package defense

import (
	"testing"
	"time"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/attack"
	"github.com/ghost-installer/gia/internal/device"
	"github.com/ghost-installer/gia/internal/installer"
	"github.com/ghost-installer/gia/internal/perm"
	"github.com/ghost-installer/gia/internal/sig"
)

type fixture struct {
	dev    *device.Device
	store  *installer.App
	mal    *attack.Malware
	target *apk.APK
	dapp   *DAPP
}

func newFixture(t *testing.T, prof installer.Profile, seed int64) *fixture {
	t.Helper()
	dev, err := device.Boot(device.Profile{Name: "nexus5", Vendor: "lge", Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	store, err := installer.Deploy(dev, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	target := apk.Build(apk.Manifest{
		Package: "com.popular.app", VersionCode: 1, Label: "Popular", Icon: "i",
		UsesPerms: []string{perm.Internet},
	}, map[string][]byte{"classes.dex": []byte("genuine")}, sig.NewKey("dev"))
	store.Store.Publish(target)
	mal, err := attack.DeployMalware(dev, "com.fun.game")
	if err != nil {
		t.Fatal(err)
	}
	dapp, err := Deploy(dev, []string{prof.StagingDir})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{dev: dev, store: store, mal: mal, target: target, dapp: dapp}
}

func (f *fixture) runAIT(t *testing.T) installer.Result {
	t.Helper()
	var res installer.Result
	got := false
	f.store.RequestInstall("com.popular.app", func(r installer.Result) { res, got = r, true })
	f.dev.Sched.RunUntil(f.dev.Sched.Now() + 2*time.Minute)
	if !got {
		t.Fatal("AIT never completed")
	}
	return res
}

func TestDAPPDetectsFileObserverHijack(t *testing.T) {
	prof := installer.Amazon()
	f := newFixture(t, prof, 101)
	atk := attack.NewTOCTOU(f.mal, attack.ConfigForStore(prof, attack.StrategyFileObserver), f.target)
	if err := atk.Launch(); err != nil {
		t.Fatal(err)
	}
	defer atk.Stop()

	res := f.runAIT(t)
	if !res.Hijacked {
		t.Fatal("attack did not land; nothing to detect")
	}
	if !f.dapp.Thwarted("com.popular.app") {
		t.Fatalf("DAPP missed the hijack; alerts = %v", f.dapp.Alerts())
	}
	// Both heuristics fire: the replacement move and the final signature
	// mismatch.
	kinds := map[AlertKind]bool{}
	for _, a := range f.dapp.Alerts() {
		kinds[a.Kind] = true
		if a.Kind.String() == "" || a.Detail == "" {
			t.Errorf("malformed alert %+v", a)
		}
	}
	if !kinds[RaceSuspected] || !kinds[SignatureMismatch] {
		t.Errorf("alert kinds = %v, want both heuristics", kinds)
	}
}

func TestDAPPDetectsWaitAndSeeHijack(t *testing.T) {
	prof := installer.DTIgnite()
	f := newFixture(t, prof, 103)
	atk := attack.NewTOCTOU(f.mal, attack.ConfigForStore(prof, attack.StrategyWaitAndSee), f.target)
	if err := atk.Launch(); err != nil {
		t.Fatal(err)
	}
	defer atk.Stop()

	res := f.runAIT(t)
	if !res.Hijacked {
		t.Fatal("attack did not land")
	}
	if !f.dapp.Thwarted("com.popular.app") {
		t.Fatalf("DAPP missed the hijack; alerts = %v", f.dapp.Alerts())
	}
}

func TestDAPPProtectsUncheckedInstallers(t *testing.T) {
	// The ordinary-developer installer performs no hash check at all;
	// DAPP is its only protection. It side-loads a fresh companion app
	// (an update of an *installed* app would additionally be stopped by
	// the PMS signature-continuity check).
	prof := installer.OrdinaryDeveloper("com.indie.launcher")
	dev, err := device.Boot(device.Profile{Name: "nexus5", Vendor: "lge", Seed: 107})
	if err != nil {
		t.Fatal(err)
	}
	store, err := installer.Deploy(dev, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	update := apk.Build(apk.Manifest{Package: "com.indie.game", VersionCode: 1, Label: "Indie Game"},
		map[string][]byte{"classes.dex": []byte("v1")}, sig.NewKey("indie-dev"))
	store.Store.Publish(update)
	mal, err := attack.DeployMalware(dev, "com.fun.game")
	if err != nil {
		t.Fatal(err)
	}
	dapp, err := Deploy(dev, []string{prof.StagingDir})
	if err != nil {
		t.Fatal(err)
	}
	cfg := attack.ConfigForStore(prof, attack.StrategyWaitAndSee)
	cfg.WaitDelay = 100 * time.Millisecond // no check to wait out
	atk := attack.NewTOCTOU(mal, cfg, update)
	if err := atk.Launch(); err != nil {
		t.Fatal(err)
	}
	defer atk.Stop()

	var res installer.Result
	store.RequestInstall("com.indie.game", func(r installer.Result) { res = r })
	dev.Sched.RunUntil(2 * time.Minute)
	if !res.Hijacked {
		t.Fatal("attack did not land on the unchecked installer")
	}
	if !dapp.Thwarted("com.indie.game") {
		t.Fatalf("DAPP missed it; alerts = %v", dapp.Alerts())
	}
}

func TestDAPPNoFalsePositivesOnCleanInstalls(t *testing.T) {
	for _, prof := range installer.AllStoreProfiles() {
		prof := prof
		t.Run(prof.Package, func(t *testing.T) {
			f := newFixture(t, prof, 109)
			res := f.runAIT(t)
			if !res.Clean() {
				t.Fatalf("clean install failed: %v", res.Err)
			}
			if alerts := f.dapp.Alerts(); len(alerts) != 0 {
				t.Errorf("false positives: %v", alerts)
			}
		})
	}
}

func TestDAPPSurvivesKillBackgroundProcesses(t *testing.T) {
	f := newFixture(t, installer.Amazon(), 113)
	// A killer app holding KILL_BACKGROUND_PROCESSES.
	killer, err := f.dev.PMS.InstallFromParsed(apk.Build(apk.Manifest{
		Package: "com.killer", VersionCode: 1, Label: "K",
		UsesPerms: []string{perm.KillBackgroundProcesses},
	}, nil, sig.NewKey("killer")))
	if err != nil {
		t.Fatal(err)
	}
	died, err := f.dev.KillBackground(killer.UID, DAPPPackage)
	if err != nil {
		t.Fatal(err)
	}
	if died {
		t.Fatal("DAPP was killed despite its foreground service")
	}
	// An ordinary background app does die.
	died, err = f.dev.KillBackground(killer.UID, "com.fun.game")
	if err != nil || !died {
		t.Errorf("background kill = %v, %v", died, err)
	}
	// And without the permission the call fails outright.
	if _, err := f.dev.KillBackground(f.mal.UID(), DAPPPackage); err == nil {
		t.Error("kill without permission succeeded")
	}
}

func TestDAPPAlertCallbackAndReset(t *testing.T) {
	prof := installer.Baidu()
	f := newFixture(t, prof, 127)
	notified := 0
	f.dapp.OnAlert(func(Alert) { notified++ })
	atk := attack.NewTOCTOU(f.mal, attack.ConfigForStore(prof, attack.StrategyFileObserver), f.target)
	if err := atk.Launch(); err != nil {
		t.Fatal(err)
	}
	defer atk.Stop()
	res := f.runAIT(t)
	if !res.Hijacked {
		t.Fatal("attack did not land")
	}
	if notified == 0 {
		t.Error("OnAlert callback never fired")
	}
	f.dapp.ResetAlerts()
	if len(f.dapp.Alerts()) != 0 {
		t.Error("alerts survive reset")
	}
	f.dapp.Stop()
}
