// Package perm implements the Android permission model the paper's attacks
// traverse: protection levels, permission groups (including the STORAGE
// group auto-grant that lets the adversary acquire WRITE_EXTERNAL_STORAGE
// silently, Section III-A), and a first-definer-wins definition registry
// that makes Hare (hanging attribute reference) hijacking possible
// (Section III-B, privilege escalation).
package perm

import (
	"errors"
	"fmt"
	"sort"
)

// Level is a permission protection level.
type Level int

// Protection levels, in increasing order of privilege.
const (
	Normal Level = iota + 1
	Dangerous
	Signature
	SignatureOrSystem
)

func (l Level) String() string {
	switch l {
	case Normal:
		return "normal"
	case Dangerous:
		return "dangerous"
	case Signature:
		return "signature"
	case SignatureOrSystem:
		return "signatureOrSystem"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ParseLevel converts a manifest protectionLevel string.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "normal", "":
		return Normal, nil
	case "dangerous":
		return Dangerous, nil
	case "signature":
		return Signature, nil
	case "signatureOrSystem":
		return SignatureOrSystem, nil
	default:
		return 0, fmt.Errorf("perm: unknown protection level %q", s)
	}
}

// Well-known permission names.
const (
	WriteExternalStorage    = "android.permission.WRITE_EXTERNAL_STORAGE"
	ReadExternalStorage     = "android.permission.READ_EXTERNAL_STORAGE"
	InstallPackages         = "android.permission.INSTALL_PACKAGES"
	DeletePackages          = "android.permission.DELETE_PACKAGES"
	Internet                = "android.permission.INTERNET"
	ReadContacts            = "android.permission.READ_CONTACTS"
	KillBackgroundProcesses = "android.permission.KILL_BACKGROUND_PROCESSES"

	// GroupStorage is the permission group shared by the two external
	// storage permissions. Holding either member lets an app silently
	// acquire the other under the Android 6.0 runtime model.
	GroupStorage = "android.permission-group.STORAGE"
)

// Definition declares a permission: who defined it, at what level, and in
// which group.
type Definition struct {
	Name      string
	Level     Level
	Group     string
	DefinedBy string // package name of the defining app ("android" for AOSP)
}

// Errors returned by the registry.
var (
	ErrAlreadyDefined = errors.New("perm: permission already defined")
	ErrNotDefined     = errors.New("perm: permission not defined")
)

// Registry tracks permission definitions on one device. Definitions follow
// Android's first-definer-wins rule: once a permission name is defined, a
// later definition by another package is rejected — which is precisely why
// *defining a permission before its legitimate owner appears* grants the
// Hare attacker control over it.
type Registry struct {
	defs map[string]Definition
}

// NewRegistry returns a registry pre-loaded with the AOSP definitions the
// simulation uses.
func NewRegistry() *Registry {
	r := &Registry{}
	r.Reset()
	return r
}

// Reset restores the registry to the factory AOSP preload, dropping every
// app-defined permission (device arena reuse between runs).
func (r *Registry) Reset() {
	if r.defs == nil {
		r.defs = make(map[string]Definition, 8)
	} else {
		clear(r.defs)
	}
	aosp := []Definition{
		{Name: WriteExternalStorage, Level: Dangerous, Group: GroupStorage},
		{Name: ReadExternalStorage, Level: Dangerous, Group: GroupStorage},
		{Name: InstallPackages, Level: SignatureOrSystem},
		{Name: DeletePackages, Level: SignatureOrSystem},
		{Name: Internet, Level: Normal},
		{Name: ReadContacts, Level: Dangerous},
		{Name: KillBackgroundProcesses, Level: Normal},
	}
	for _, d := range aosp {
		d.DefinedBy = "android"
		r.defs[d.Name] = d
	}
}

// Define registers a permission definition. It fails if the name is taken.
func (r *Registry) Define(d Definition) error {
	if existing, ok := r.defs[d.Name]; ok {
		return fmt.Errorf("%q already defined by %s: %w", d.Name, existing.DefinedBy, ErrAlreadyDefined)
	}
	r.defs[d.Name] = d
	return nil
}

// Undefine removes every definition owned by pkg (app uninstall), returning
// the removed names. Permissions used by other apps become hanging (Hare).
func (r *Registry) Undefine(pkg string) []string {
	var removed []string
	for name, d := range r.defs {
		if d.DefinedBy == pkg {
			delete(r.defs, name)
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	return removed
}

// Lookup returns the definition of name.
func (r *Registry) Lookup(name string) (Definition, bool) {
	d, ok := r.defs[name]
	return d, ok
}

// Defined reports whether name has a definition.
func (r *Registry) Defined(name string) bool {
	_, ok := r.defs[name]
	return ok
}

// DefinerOf returns the package that defined name, or "" if undefined.
func (r *Registry) DefinerOf(name string) string {
	if d, ok := r.defs[name]; ok {
		return d.DefinedBy
	}
	return ""
}

// SameGroup reports whether two defined permissions share a non-empty
// permission group — the condition for the silent runtime auto-grant.
func (r *Registry) SameGroup(a, b string) bool {
	da, okA := r.defs[a]
	db, okB := r.defs[b]
	return okA && okB && da.Group != "" && da.Group == db.Group
}

// Names returns all defined permission names, sorted.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.defs))
	for name := range r.defs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
