package perm

import (
	"errors"
	"testing"
)

func TestParseLevel(t *testing.T) {
	tests := []struct {
		give    string
		want    Level
		wantErr bool
	}{
		{give: "normal", want: Normal},
		{give: "", want: Normal},
		{give: "dangerous", want: Dangerous},
		{give: "signature", want: Signature},
		{give: "signatureOrSystem", want: SignatureOrSystem},
		{give: "bogus", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseLevel(tt.give)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseLevel(%q) succeeded, want error", tt.give)
			}
			continue
		}
		if err != nil || got != tt.want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", tt.give, got, err, tt.want)
		}
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{
		Normal: "normal", Dangerous: "dangerous",
		Signature: "signature", SignatureOrSystem: "signatureOrSystem",
	} {
		if l.String() != want {
			t.Errorf("%d.String() = %q, want %q", l, l.String(), want)
		}
	}
}

func TestRegistryHasAOSPDefaults(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{WriteExternalStorage, ReadExternalStorage, InstallPackages, DeletePackages} {
		d, ok := r.Lookup(name)
		if !ok {
			t.Errorf("%s not defined by default", name)
			continue
		}
		if d.DefinedBy != "android" {
			t.Errorf("%s defined by %q, want android", name, d.DefinedBy)
		}
	}
	if d, _ := r.Lookup(InstallPackages); d.Level != SignatureOrSystem {
		t.Errorf("INSTALL_PACKAGES level = %v", d.Level)
	}
}

func TestFirstDefinerWins(t *testing.T) {
	r := NewRegistry()
	hare := Definition{Name: "com.vlingo.midas.contacts.permission.READ", Level: Normal, DefinedBy: "com.malware"}
	if err := r.Define(hare); err != nil {
		t.Fatal(err)
	}
	// The legitimate app arrives later and cannot take the name back.
	later := hare
	later.DefinedBy = "com.vlingo.midas"
	later.Level = Signature
	if err := r.Define(later); !errors.Is(err, ErrAlreadyDefined) {
		t.Fatalf("second Define = %v, want ErrAlreadyDefined", err)
	}
	if got := r.DefinerOf(hare.Name); got != "com.malware" {
		t.Errorf("definer = %q, want com.malware", got)
	}
	if d, _ := r.Lookup(hare.Name); d.Level != Normal {
		t.Errorf("level = %v, want the hijacker's Normal", d.Level)
	}
}

func TestUndefineCreatesHangingReferences(t *testing.T) {
	r := NewRegistry()
	defs := []Definition{
		{Name: "com.app.P1", Level: Signature, DefinedBy: "com.app"},
		{Name: "com.app.P2", Level: Normal, DefinedBy: "com.app"},
		{Name: "com.other.P", Level: Normal, DefinedBy: "com.other"},
	}
	for _, d := range defs {
		if err := r.Define(d); err != nil {
			t.Fatal(err)
		}
	}
	removed := r.Undefine("com.app")
	if len(removed) != 2 || removed[0] != "com.app.P1" || removed[1] != "com.app.P2" {
		t.Errorf("removed = %v", removed)
	}
	if r.Defined("com.app.P1") || r.Defined("com.app.P2") {
		t.Error("permissions survive undefine")
	}
	if !r.Defined("com.other.P") {
		t.Error("unrelated permission removed")
	}
	if got := r.DefinerOf("com.app.P1"); got != "" {
		t.Errorf("DefinerOf removed perm = %q", got)
	}
}

func TestSameGroup(t *testing.T) {
	r := NewRegistry()
	if !r.SameGroup(WriteExternalStorage, ReadExternalStorage) {
		t.Error("storage permissions not in the same group")
	}
	if r.SameGroup(WriteExternalStorage, Internet) {
		t.Error("unrelated permissions reported in the same group")
	}
	if r.SameGroup(WriteExternalStorage, "undefined.perm") {
		t.Error("undefined permission reported grouped")
	}
	// Two grouped-empty permissions never match.
	if r.SameGroup(Internet, KillBackgroundProcesses) {
		t.Error("ungrouped permissions reported grouped")
	}
}

func TestNamesSorted(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	if len(names) == 0 {
		t.Fatal("no names")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}
