// Package procfs models the slice of /proc the redirect-Intent attacker
// reads: /proc/<pid>/oom_adj, which is world-readable on the Android
// versions the paper studies and drops to zero when an app moves to the
// foreground (Section III-D).
package procfs

import (
	"errors"
	"fmt"
	"sort"
)

// oom_adj values used by Android's process ranking.
const (
	// OOMForeground is the oom_adj of the foreground app.
	OOMForeground = 0
	// OOMVisible is assigned to visible-but-not-foreground processes.
	OOMVisible = 1
	// OOMBackground is assigned to cached background processes.
	OOMBackground = 9
)

// ErrNoProcess is returned for unknown PIDs or packages.
var ErrNoProcess = errors.New("procfs: no such process")

// Table is the process table of one device.
type Table struct {
	byPID   map[int]*proc
	byPkg   map[string]int
	nextPID int
	// free recycles proc structs across Reset: sweep schedules register the
	// same handful of packages every run.
	free []*proc
}

type proc struct {
	pid    int
	pkg    string
	oomAdj int
}

// NewTable creates an empty process table. PIDs start at 1000 to look
// Android-ish in traces.
func NewTable() *Table {
	return &Table{
		byPID:   make(map[int]*proc),
		byPkg:   make(map[string]int),
		nextPID: 1000,
	}
}

// Reset empties the table and rewinds PID allocation to its boot value.
func (t *Table) Reset() {
	for pid, p := range t.byPID {
		if len(t.free) < 64 {
			*p = proc{}
			t.free = append(t.free, p)
		}
		delete(t.byPID, pid)
	}
	clear(t.byPkg)
	t.nextPID = 1000
}

// Register adds a process for pkg and returns its PID. Registering an
// already-running package returns the existing PID.
func (t *Table) Register(pkg string) int {
	if pid, ok := t.byPkg[pkg]; ok {
		return pid
	}
	pid := t.nextPID
	t.nextPID++
	var p *proc
	if n := len(t.free); n > 0 {
		p = t.free[n-1]
		t.free[n-1] = nil
		t.free = t.free[:n-1]
	} else {
		p = new(proc)
	}
	*p = proc{pid: pid, pkg: pkg, oomAdj: OOMBackground}
	t.byPID[pid] = p
	t.byPkg[pkg] = pid
	return pid
}

// Unregister removes pkg's process (app killed or uninstalled).
func (t *Table) Unregister(pkg string) {
	if pid, ok := t.byPkg[pkg]; ok {
		delete(t.byPID, pid)
		delete(t.byPkg, pkg)
	}
}

// PIDOf returns the PID of pkg's process.
func (t *Table) PIDOf(pkg string) (int, error) {
	pid, ok := t.byPkg[pkg]
	if !ok {
		return 0, fmt.Errorf("%s: %w", pkg, ErrNoProcess)
	}
	return pid, nil
}

// SetForeground marks pkg as the foreground app: its oom_adj drops to 0 and
// the previous foreground process falls back to background.
func (t *Table) SetForeground(pkg string) error {
	pid, ok := t.byPkg[pkg]
	if !ok {
		return fmt.Errorf("%s: %w", pkg, ErrNoProcess)
	}
	for _, p := range t.byPID {
		if p.oomAdj == OOMForeground {
			p.oomAdj = OOMBackground
		}
	}
	t.byPID[pid].oomAdj = OOMForeground
	return nil
}

// OOMAdj reads /proc/<pid>/oom_adj. Any process may read any other's value —
// the public side channel the attacker polls.
func (t *Table) OOMAdj(pid int) (int, error) {
	p, ok := t.byPID[pid]
	if !ok {
		return 0, fmt.Errorf("pid %d: %w", pid, ErrNoProcess)
	}
	return p.oomAdj, nil
}

// Foreground returns the current foreground package, if any.
func (t *Table) Foreground() (string, bool) {
	for _, p := range t.byPID {
		if p.oomAdj == OOMForeground {
			return p.pkg, true
		}
	}
	return "", false
}

// Processes lists running packages, sorted.
func (t *Table) Processes() []string {
	out := make([]string, 0, len(t.byPkg))
	for pkg := range t.byPkg {
		out = append(out, pkg)
	}
	sort.Strings(out)
	return out
}
