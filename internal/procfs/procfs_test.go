package procfs

import (
	"errors"
	"testing"
)

func TestRegisterAndPIDs(t *testing.T) {
	tbl := NewTable()
	pid1 := tbl.Register("com.facebook")
	pid2 := tbl.Register("com.android.vending")
	if pid1 == pid2 {
		t.Fatal("duplicate PIDs")
	}
	if again := tbl.Register("com.facebook"); again != pid1 {
		t.Errorf("re-register changed PID: %d -> %d", pid1, again)
	}
	got, err := tbl.PIDOf("com.facebook")
	if err != nil || got != pid1 {
		t.Errorf("PIDOf = %d, %v", got, err)
	}
	if _, err := tbl.PIDOf("com.none"); !errors.Is(err, ErrNoProcess) {
		t.Errorf("PIDOf unknown = %v", err)
	}
	procs := tbl.Processes()
	if len(procs) != 2 || procs[0] != "com.android.vending" {
		t.Errorf("Processes = %v", procs)
	}
}

func TestForegroundTransitionsVisibleViaOOMAdj(t *testing.T) {
	tbl := NewTable()
	fb := tbl.Register("com.facebook")
	play := tbl.Register("com.android.vending")

	// Fresh processes are background.
	if adj, _ := tbl.OOMAdj(fb); adj != OOMBackground {
		t.Errorf("initial oom_adj = %d", adj)
	}

	if err := tbl.SetForeground("com.facebook"); err != nil {
		t.Fatal(err)
	}
	if adj, _ := tbl.OOMAdj(fb); adj != OOMForeground {
		t.Errorf("facebook oom_adj = %d, want 0", adj)
	}

	// Play takes the foreground: facebook's oom_adj rises — the signal
	// the redirect attacker polls for.
	if err := tbl.SetForeground("com.android.vending"); err != nil {
		t.Fatal(err)
	}
	if adj, _ := tbl.OOMAdj(fb); adj != OOMBackground {
		t.Errorf("facebook oom_adj after switch = %d, want background", adj)
	}
	if adj, _ := tbl.OOMAdj(play); adj != OOMForeground {
		t.Errorf("play oom_adj = %d, want 0", adj)
	}
	if fg, ok := tbl.Foreground(); !ok || fg != "com.android.vending" {
		t.Errorf("Foreground = %q, %v", fg, ok)
	}
}

func TestSetForegroundUnknown(t *testing.T) {
	tbl := NewTable()
	if err := tbl.SetForeground("com.none"); !errors.Is(err, ErrNoProcess) {
		t.Errorf("err = %v", err)
	}
}

func TestUnregister(t *testing.T) {
	tbl := NewTable()
	pid := tbl.Register("com.app")
	tbl.Unregister("com.app")
	if _, err := tbl.OOMAdj(pid); !errors.Is(err, ErrNoProcess) {
		t.Errorf("OOMAdj after unregister = %v", err)
	}
	if _, ok := tbl.Foreground(); ok {
		t.Error("foreground reported with no processes")
	}
	tbl.Unregister("com.app") // idempotent
}
