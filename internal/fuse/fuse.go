// Package fuse models Android's FUSE daemon, the userspace wrapper that
// enforces external-storage ("/sdcard") access policy.
//
// In stock Android the daemon makes DAC irrelevant on the SD card: any app
// holding WRITE_EXTERNAL_STORAGE may create, overwrite, move or delete any
// file there, which is the root cause of the installation-hijacking attacks
// of Section III-B. The paper's system-level defense (Section V-C) patches
// three functions of the daemon; this package implements both behaviours:
//
//   - derive_permissions_locked: newly created *.apk files get mode 640 and
//     are recorded, with their owner, on an APK list;
//   - check_caller_access_to_name: non-system callers other than the owner
//     cannot write to or delete a listed APK even with the storage
//     permission;
//   - handle_rename: path alterations (rename or delete of a directory)
//     are refused when the affected subtree contains APKs the caller does
//     not own, and a listed APK cannot be renamed over.
package fuse

import (
	"fmt"
	"strings"
	"time"

	"github.com/ghost-installer/gia/internal/fault"
	"github.com/ghost-installer/gia/internal/perm"
	"github.com/ghost-installer/gia/internal/vfs"
)

// PermChecker reports whether uid holds the named Android permission. The
// device wires this to the PackageManager's grant table.
type PermChecker func(uid vfs.UID, permission string) bool

// Daemon is the FUSE daemon for one external-storage mount. Install it with
// FS.Mount(root, daemon, capacity).
type Daemon struct {
	root     string
	perms    PermChecker
	patched  bool
	apkList  map[string]vfs.UID // protected APK path -> owning UID
	injector fault.Injector
	now      func() time.Duration
}

// SetFaultInjector installs (or, with nil, removes) the fault hook probed on
// every access check (fault.SiteFuseCheck): an error-kind fault surfaces as
// a transient daemon failure, denying an operation the policy would allow.
func (d *Daemon) SetFaultInjector(fi fault.Injector) { d.injector = fi }

// SetClock supplies the virtual clock used to timestamp fault probes
// (Scheduler.Now); without one, probes report time zero.
func (d *Daemon) SetClock(now func() time.Duration) { d.now = now }

var _ vfs.Policy = (*Daemon)(nil)

// New creates a daemon guarding the subtree rooted at root (typically
// "/sdcard") using perms to evaluate storage permissions.
func New(root string, perms PermChecker) *Daemon {
	return &Daemon{
		root:    root,
		perms:   perms,
		apkList: make(map[string]vfs.UID),
	}
}

// Reset returns the daemon to its freshly-created state: patch disabled,
// APK list empty, fault injector removed. The mount root, permission
// checker and clock are boot-time wiring and survive.
func (d *Daemon) Reset() {
	d.patched = false
	d.apkList = make(map[string]vfs.UID)
	d.injector = nil
}

// Root reports the guarded mount point.
func (d *Daemon) Root() string { return d.root }

// SetPatched enables or disables the Section V-C protection scheme.
// Disabling does not clear the APK list, so re-enabling resumes protection
// of previously recorded APKs.
func (d *Daemon) SetPatched(on bool) { d.patched = on }

// Patched reports whether the protection scheme is active.
func (d *Daemon) Patched() bool { return d.patched }

// Protected reports the recorded owner of path, if it is a listed APK.
func (d *Daemon) Protected(path string) (vfs.UID, bool) {
	owner, ok := d.apkList[path]
	return owner, ok
}

// APKList returns a copy of the protected-APK table.
func (d *Daemon) APKList() map[string]vfs.UID {
	out := make(map[string]vfs.UID, len(d.apkList))
	for p, u := range d.apkList {
		out[p] = u
	}
	return out
}

// Check implements vfs.Policy with the stock external-storage semantics,
// tightened by the patch when enabled.
func (d *Daemon) Check(fs *vfs.FS, req vfs.Request) error {
	if d.injector != nil {
		var now time.Duration
		if d.now != nil {
			now = d.now()
		}
		if act := d.injector.Probe(fault.SiteFuseCheck, req.Path, now); act.Kind == fault.KindError {
			return fmt.Errorf("fuse: %s %s: %w", req.Op, req.Path, act.Err)
		}
	}
	if req.Actor.IsSystem() {
		// The protected file can always be handled by a system process
		// (e.g. the user freeing space through Settings). System deletes
		// and renames keep the APK list in sync.
		d.maintainList(req)
		return nil
	}
	switch req.Op {
	case vfs.OpRead:
		if !d.canRead(req.Actor) {
			return fmt.Errorf("fuse: read %s without storage permission: %w", req.Path, vfs.ErrPermission)
		}
		return nil
	case vfs.OpCreate, vfs.OpWrite, vfs.OpDelete, vfs.OpRename, vfs.OpChmod:
		if !d.canWrite(req.Actor) {
			return fmt.Errorf("fuse: %s %s without WRITE_EXTERNAL_STORAGE: %w", req.Op, req.Path, vfs.ErrPermission)
		}
	default:
		return fmt.Errorf("fuse: %s %s: unknown op: %w", req.Op, req.Path, vfs.ErrInvalidPath)
	}
	if !d.patched {
		return nil
	}
	if err := d.checkCallerAccess(req); err != nil {
		return err
	}
	d.maintainList(req)
	return nil
}

// checkCallerAccess is the patched check_caller_access_to_name plus
// handle_rename logic.
func (d *Daemon) checkCallerAccess(req vfs.Request) error {
	switch req.Op {
	case vfs.OpWrite, vfs.OpDelete, vfs.OpChmod:
		if owner, ok := d.apkList[req.Path]; ok && owner != req.Actor {
			return fmt.Errorf("fuse: %s protected APK %s (owner uid %d, caller uid %d): %w",
				req.Op, req.Path, owner, req.Actor, vfs.ErrPermission)
		}
		// A directory removal must not orphan protected APKs beneath it.
		if req.Op == vfs.OpDelete && req.Info != nil && req.Info.IsDir {
			if victim := d.subtreeVictim(req.Path, req.Actor); victim != "" {
				return fmt.Errorf("fuse: delete %s would affect protected APK %s: %w",
					req.Path, victim, vfs.ErrPermission)
			}
		}
		return nil
	case vfs.OpRename:
		// Moving a protected APK itself.
		if owner, ok := d.apkList[req.Path]; ok && owner != req.Actor {
			return fmt.Errorf("fuse: rename protected APK %s (owner uid %d): %w", req.Path, owner, vfs.ErrPermission)
		}
		// Moving onto a protected APK (the replacement attack).
		if owner, ok := d.apkList[req.Other]; ok && owner != req.Actor {
			return fmt.Errorf("fuse: rename over protected APK %s (owner uid %d): %w", req.Other, owner, vfs.ErrPermission)
		}
		// Altering a path that contains protected APKs.
		if req.Info != nil && req.Info.IsDir {
			if victim := d.subtreeVictim(req.Path, req.Actor); victim != "" {
				return fmt.Errorf("fuse: rename %s would affect protected APK %s: %w",
					req.Path, victim, vfs.ErrPermission)
			}
		}
		return nil
	default:
		return nil
	}
}

// subtreeVictim returns a protected APK under dir not owned by actor.
func (d *Daemon) subtreeVictim(dir string, actor vfs.UID) string {
	prefix := dir + "/"
	for path, owner := range d.apkList {
		if owner != actor && strings.HasPrefix(path, prefix) {
			return path
		}
	}
	return ""
}

// maintainList updates the APK list after an allowed destructive operation.
func (d *Daemon) maintainList(req vfs.Request) {
	switch req.Op {
	case vfs.OpDelete:
		delete(d.apkList, req.Path)
	case vfs.OpRename:
		if owner, ok := d.apkList[req.Path]; ok {
			delete(d.apkList, req.Path)
			d.apkList[req.Other] = owner
		}
		// Renaming a non-APK over a tracked APK (system only, or the
		// owner) drops the protection record for the overwritten file.
		if _, ok := d.apkList[req.Other]; ok && !isAPKPath(req.Path) {
			delete(d.apkList, req.Other)
		}
	}
}

// DeriveMode implements derive_permissions_locked: when the patch is on,
// every APK created on the mount becomes 640 and is recorded with its owner.
func (d *Daemon) DeriveMode(fs *vfs.FS, path string, actor vfs.UID, requested vfs.Mode) vfs.Mode {
	if d.patched && isAPKPath(path) {
		d.apkList[path] = actor
		return vfs.ModeProtectedAPK
	}
	// Stock FUSE presents shared-storage files with permissive modes; the
	// daemon's permission checks are what actually gate access.
	return vfs.ModeShared
}

func (d *Daemon) canRead(uid vfs.UID) bool {
	return d.perms(uid, perm.ReadExternalStorage) || d.perms(uid, perm.WriteExternalStorage)
}

func (d *Daemon) canWrite(uid vfs.UID) bool {
	return d.perms(uid, perm.WriteExternalStorage)
}

func isAPKPath(path string) bool {
	return strings.HasSuffix(path, ".apk")
}
