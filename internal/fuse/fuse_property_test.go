package fuse

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/ghost-installer/gia/internal/vfs"
)

// Property: under the patched daemon, no sequence of attacker operations
// (overwrite / delete / rename-away / rename-over / chmod) can change a
// protected APK's content, whatever order they arrive in.
func TestPropertyPatchedAPKContentIsImmutableToOthers(t *testing.T) {
	f := func(ops []uint8) bool {
		fs, _ := newSDCard2(t, true)
		const content = "genuine-apk-bytes"
		if err := fs.WriteFile("/sdcard/store/app.apk", []byte(content), storeApp, 0); err != nil {
			return false
		}
		// Attacker pre-stages a replacement.
		if err := fs.WriteFile("/sdcard/evil.bin", []byte("evil"), attacker, 0); err != nil {
			return false
		}
		for _, op := range ops {
			switch op % 5 {
			case 0:
				_ = fs.WriteFile("/sdcard/store/app.apk", []byte("evil"), attacker, 0)
			case 1:
				_ = fs.Remove("/sdcard/store/app.apk", attacker)
			case 2:
				_ = fs.Rename("/sdcard/store/app.apk", "/sdcard/gone.apk", attacker)
			case 3:
				_ = fs.Rename("/sdcard/evil.bin", "/sdcard/store/app.apk", attacker)
			case 4:
				_ = fs.Chmod("/sdcard/store/app.apk", vfs.ModeShared, attacker)
			}
		}
		got, err := fs.ReadFile("/sdcard/store/app.apk", storeApp)
		return err == nil && string(got) == content
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// newSDCard2 is newSDCard without fatal assertions, usable inside a
// quick.Check closure.
func newSDCard2(t *testing.T, patched bool) (*vfs.FS, *Daemon) {
	t.Helper()
	fs := vfs.New(func() time.Duration { return 0 })
	d := New("/sdcard", grants)
	d.SetPatched(patched)
	_ = fs.MkdirAll("/sdcard", vfs.Root, vfs.ModeDir)
	_ = fs.Mount("/sdcard", d, 0)
	_ = fs.MkdirAll("/sdcard/store", storeApp, vfs.ModeDir)
	return fs, d
}
