package fuse

import (
	"errors"
	"testing"
	"time"

	"github.com/ghost-installer/gia/internal/perm"
	"github.com/ghost-installer/gia/internal/vfs"
)

const (
	storeApp vfs.UID = 10010 // the installer that owns downloaded APKs
	attacker vfs.UID = 10666 // holds WRITE_EXTERNAL_STORAGE, nothing else
	noPerms  vfs.UID = 10777 // holds no storage permission
)

// grantAll emulates a PackageManager grant table where storeApp and
// attacker hold the storage permissions.
func grants(uid vfs.UID, p string) bool {
	if uid == noPerms {
		return false
	}
	return p == perm.WriteExternalStorage || p == perm.ReadExternalStorage
}

func newSDCard(t *testing.T, patched bool) (*vfs.FS, *Daemon) {
	t.Helper()
	fs := vfs.New(func() time.Duration { return 0 })
	d := New("/sdcard", grants)
	d.SetPatched(patched)
	if err := fs.MkdirAll("/sdcard", vfs.Root, vfs.ModeDir); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mount("/sdcard", d, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/sdcard/store", storeApp, vfs.ModeDir); err != nil {
		t.Fatal(err)
	}
	return fs, d
}

func TestStockFUSEIgnoresDAC(t *testing.T) {
	fs, _ := newSDCard(t, false)
	// storeApp downloads an APK, mode is presented as shared regardless.
	if err := fs.WriteFile("/sdcard/store/app.apk", []byte("legit"), storeApp, vfs.ModePrivate); err != nil {
		t.Fatal(err)
	}
	info, _ := fs.Stat("/sdcard/store/app.apk")
	if info.Mode != vfs.ModeShared {
		t.Errorf("mode = %o, want %o (FUSE presents shared modes)", info.Mode, vfs.ModeShared)
	}
	// Any app with WRITE_EXTERNAL_STORAGE can replace it: the GIA root cause.
	if err := fs.WriteFile("/sdcard/store/app.apk", []byte("evil"), attacker, 0); err != nil {
		t.Fatalf("stock FUSE blocked the overwrite: %v", err)
	}
	got, _ := fs.ReadFile("/sdcard/store/app.apk", attacker)
	if string(got) != "evil" {
		t.Errorf("content = %q", got)
	}
}

func TestStorageCardPermissionRequired(t *testing.T) {
	fs, _ := newSDCard(t, false)
	if err := fs.WriteFile("/sdcard/store/f", []byte("x"), noPerms, 0); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("write without permission = %v, want ErrPermission", err)
	}
	if err := fs.WriteFile("/sdcard/store/f", []byte("x"), storeApp, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/sdcard/store/f", noPerms); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("read without permission = %v, want ErrPermission", err)
	}
	if _, err := fs.ReadFile("/sdcard/store/f", attacker); err != nil {
		t.Errorf("read with permission failed: %v", err)
	}
}

func TestPatchedFUSEDerivesProtectedAPKMode(t *testing.T) {
	fs, d := newSDCard(t, true)
	if err := fs.WriteFile("/sdcard/store/app.apk", []byte("legit"), storeApp, 0); err != nil {
		t.Fatal(err)
	}
	info, _ := fs.Stat("/sdcard/store/app.apk")
	if info.Mode != vfs.ModeProtectedAPK {
		t.Errorf("APK mode = %o, want 640", info.Mode)
	}
	if owner, ok := d.Protected("/sdcard/store/app.apk"); !ok || owner != storeApp {
		t.Errorf("APK list entry = %d, %v", owner, ok)
	}
	// Non-APK files are unaffected.
	if err := fs.WriteFile("/sdcard/store/notes.txt", []byte("x"), storeApp, 0); err != nil {
		t.Fatal(err)
	}
	info, _ = fs.Stat("/sdcard/store/notes.txt")
	if info.Mode != vfs.ModeShared {
		t.Errorf("txt mode = %o, want shared", info.Mode)
	}
}

func TestPatchedFUSEBlocksOverwriteDeleteRename(t *testing.T) {
	fs, _ := newSDCard(t, true)
	if err := fs.WriteFile("/sdcard/store/app.apk", []byte("legit"), storeApp, 0); err != nil {
		t.Fatal(err)
	}

	if err := fs.WriteFile("/sdcard/store/app.apk", []byte("evil"), attacker, 0); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("attacker overwrite = %v, want ErrPermission", err)
	}
	if err := fs.Remove("/sdcard/store/app.apk", attacker); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("attacker delete = %v, want ErrPermission", err)
	}
	if err := fs.Rename("/sdcard/store/app.apk", "/sdcard/stolen.apk", attacker); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("attacker rename = %v, want ErrPermission", err)
	}
	// Moving an attacker file over the protected APK is also blocked.
	if err := fs.WriteFile("/sdcard/evil.apk", []byte("evil"), attacker, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/sdcard/evil.apk", "/sdcard/store/app.apk", attacker); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("rename over protected APK = %v, want ErrPermission", err)
	}

	// The legitimate owner can still do all of it.
	if err := fs.WriteFile("/sdcard/store/app.apk", []byte("update"), storeApp, 0); err != nil {
		t.Errorf("owner overwrite blocked: %v", err)
	}
	got, _ := fs.ReadFile("/sdcard/store/app.apk", storeApp)
	if string(got) != "update" {
		t.Errorf("content = %q", got)
	}
}

func TestPatchedFUSEBlocksPathAlteration(t *testing.T) {
	fs, _ := newSDCard(t, true)
	if err := fs.WriteFile("/sdcard/store/app.apk", []byte("legit"), storeApp, 0); err != nil {
		t.Fatal(err)
	}
	// Renaming the whole directory away (to recreate it with a malicious
	// APK) is the bypass handle_rename prevents.
	if err := fs.Rename("/sdcard/store", "/sdcard/hidden", attacker); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("directory rename = %v, want ErrPermission", err)
	}
	// So is deleting the tree.
	if err := fs.Remove("/sdcard/store/app.apk", attacker); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("delete = %v, want ErrPermission", err)
	}
	// The owner may reorganize its own directory.
	if err := fs.Rename("/sdcard/store", "/sdcard/store2", storeApp); err != nil {
		t.Errorf("owner directory rename blocked: %v", err)
	}
}

func TestPatchedFUSESystemAlwaysAllowed(t *testing.T) {
	fs, d := newSDCard(t, true)
	if err := fs.WriteFile("/sdcard/store/app.apk", []byte("legit"), storeApp, 0); err != nil {
		t.Fatal(err)
	}
	// The user deletes the file through Settings (a system process).
	if err := fs.Remove("/sdcard/store/app.apk", vfs.System); err != nil {
		t.Fatalf("system delete blocked: %v", err)
	}
	if _, ok := d.Protected("/sdcard/store/app.apk"); ok {
		t.Error("APK list retains a deleted file")
	}
}

func TestAPKListFollowsOwnerRename(t *testing.T) {
	fs, d := newSDCard(t, true)
	if err := fs.WriteFile("/sdcard/store/tmp.apk", []byte("x"), storeApp, 0); err != nil {
		t.Fatal(err)
	}
	// Xiaomi-style: the installer renames the temp name to the official
	// name when the download completes.
	if err := fs.Rename("/sdcard/store/tmp.apk", "/sdcard/store/final.apk", storeApp); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Protected("/sdcard/store/tmp.apk"); ok {
		t.Error("old path still protected")
	}
	if owner, ok := d.Protected("/sdcard/store/final.apk"); !ok || owner != storeApp {
		t.Errorf("new path protection = %d, %v", owner, ok)
	}
	// And the protection still holds at the new path.
	if err := fs.WriteFile("/sdcard/store/final.apk", []byte("evil"), attacker, 0); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("attacker overwrite after rename = %v, want ErrPermission", err)
	}
}

func TestProtectionPersistsAcrossPatchToggle(t *testing.T) {
	fs, d := newSDCard(t, true)
	if err := fs.WriteFile("/sdcard/store/app.apk", []byte("x"), storeApp, 0); err != nil {
		t.Fatal(err)
	}
	d.SetPatched(false)
	if !d.Patched() {
		_ = 0 // SetPatched(false) leaves the list intact
	}
	d.SetPatched(true)
	if err := fs.WriteFile("/sdcard/store/app.apk", []byte("evil"), attacker, 0); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("protection lost across toggle: %v", err)
	}
	if len(d.APKList()) != 1 {
		t.Errorf("APKList = %v", d.APKList())
	}
}
