package corpus

import (
	"fmt"
	"strings"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/sig"
)

// BuildAPKFor materializes an AppMeta as an actual APK artifact whose
// embedded "smali" carries the code-level markers the Section IV-A tooling
// scans for: the package-archive MIME string, /sdcard path constants,
// world-readable file APIs (reached through a register, so extraction needs
// the def-use step), and hard-coded market links. Apps whose storage
// behaviour resists lightweight analysis get reflection-obfuscated code.
//
// The builder is the ground-truth half of the measurement pipeline; the
// extractor in internal/measure recovers the features from the artifact.
func BuildAPKFor(meta AppMeta) *apk.APK {
	m := apk.Manifest{
		Package:     meta.Package,
		VersionCode: meta.VersionCode,
		Label:       meta.Package,
	}
	if meta.UsesWriteExternal {
		m.UsesPerms = append(m.UsesPerms, "android.permission.WRITE_EXTERNAL_STORAGE")
	}
	if meta.UsesInstallPkgs {
		m.UsesPerms = append(m.UsesPerms, "android.permission.INSTALL_PACKAGES")
	}
	files := map[string][]byte{
		"smali/Main.smali": []byte(mainSmali(meta)),
	}
	if meta.HasInstallAPI {
		files["smali/Installer.smali"] = []byte(installerSmali(meta))
	}
	if meta.MarketLinks > 0 {
		files["smali/Redirects.smali"] = []byte(redirectSmali(meta))
	}
	return apk.Build(m, files, sig.NewKey(meta.Signer))
}

func mainSmali(meta AppMeta) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".class public L%s/Main;\n", slashed(meta.Package))
	b.WriteString(".method public onCreate()V\n")
	b.WriteString("    const-string v0, \"hello\"\n")
	b.WriteString("    return-void\n")
	b.WriteString(".end method\n")
	// Benign near-misses, emitted for every app: a version probe that
	// loads package info WITHOUT the signatures flag, and a download
	// checksum that drives a digest WITHOUT referencing the code archive.
	// The anti-repackaging rules must not fire on either — they keep the
	// true-negative pressure on the whole corpus, not just pinned samples.
	b.WriteString(".method private checkVersion()V\n")
	b.WriteString("    invoke-virtual {p0, v1, v2}, Landroid/content/pm/PackageManager;->getPackageInfo(Ljava/lang/String;I)Landroid/content/pm/PackageInfo;\n")
	b.WriteString("    return-void\n")
	b.WriteString(".end method\n")
	b.WriteString(".method private checksumDownload()V\n")
	b.WriteString("    const-string v0, \"update.bin\"\n")
	b.WriteString("    invoke-static {v1}, Ljava/security/MessageDigest;->getInstance(Ljava/lang/String;)Ljava/security/MessageDigest;\n")
	b.WriteString("    return-void\n")
	b.WriteString(".end method\n")
	if meta.SelfSigCheck {
		// The defense idiom: own package info loaded with GET_SIGNATURES.
		b.WriteString(".method private verifySigner()V\n")
		b.WriteString("    const/16 v1, GET_SIGNATURES\n")
		b.WriteString("    invoke-virtual {p0, v0, v1}, Landroid/content/pm/PackageManager;->getPackageInfo(Ljava/lang/String;I)Landroid/content/pm/PackageInfo;\n")
		b.WriteString("    return-void\n")
		b.WriteString(".end method\n")
	}
	if meta.IntegrityCheck {
		// The defense idiom: a digest driven over the code archive.
		b.WriteString(".method private verifyPackageDigest()V\n")
		b.WriteString("    const-string v0, \"classes.dex\"\n")
		b.WriteString("    invoke-static {v1}, Ljava/security/MessageDigest;->getInstance(Ljava/lang/String;)Ljava/security/MessageDigest;\n")
		b.WriteString("    return-void\n")
		b.WriteString(".end method\n")
	}
	return b.String()
}

// installerSmali emits the installation routine with storage-dependent
// markers. The emitted code is deliberately not straight-line: modes are
// reassigned within the method, flow through branch joins and backward
// jumps, and a second method reuses the same register names — so only an
// analysis with real control flow and per-method def-use chains (not a
// flattened last-write-wins register map) classifies it correctly.
func installerSmali(meta AppMeta) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".class public L%s/Installer;\n", slashed(meta.Package))
	b.WriteString(".method public installDownloaded()V\n")
	// The installation API marker: setDataAndType with the archive MIME.
	b.WriteString("    const-string v0, \"application/vnd.android.package-archive\"\n")
	b.WriteString("    invoke-virtual {p1, v1, v0}, Landroid/content/Intent;->setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;\n")
	switch meta.Storage {
	case StorageSDCard:
		if meta.CrossMethodStaging {
			// Interprocedural variant: the staging path is produced by an
			// Environment getter in a helper method and consumed by the
			// install sink here. No /sdcard literal exists anywhere, so the
			// intraprocedural staging rule is structurally blind to it —
			// only the taint rule (helper summary: returns external-path)
			// classifies this app correctly.
			fmt.Fprintf(&b, "    invoke-direct {p0}, L%s/Installer;->getStageDir()Ljava/lang/String;\n", slashed(meta.Package))
			b.WriteString("    move-result-object v2\n")
			b.WriteString("    invoke-virtual {p1, v2, v0}, Landroid/content/Intent;->setDataAndType(Landroid/net/Uri;Ljava/lang/String;)Landroid/content/Intent;\n")
			b.WriteString("    return-void\n")
			b.WriteString(".end method\n")
			b.WriteString(".method private getStageDir()Ljava/lang/String;\n")
			b.WriteString("    invoke-static {}, Landroid/os/Environment;->getExternalStorageDirectory()Ljava/io/File;\n")
			b.WriteString("    move-result-object v0\n")
			b.WriteString("    return-object v0\n")
			b.WriteString(".end method\n")
			b.WriteString(".method private touchStageFile()V\n")
			b.WriteString("    invoke-virtual {v9, v3}, Ljava/io/File;->setReadable(Z)Z\n")
			b.WriteString("    return-void\n")
			b.WriteString(".end method\n")
			return b.String()
		}
		// Stages on shared storage; never makes anything world-readable.
		fmt.Fprintf(&b, "    const-string v2, \"/sdcard/%s/stage.apk\"\n", shortName(meta.Package))
		b.WriteString("    invoke-static {v2}, Ljava/io/File;-><init>(Ljava/lang/String;)V\n")
		// Register-overwrite regression: in execution order the mode
		// register is first set to MODE_WORLD_READABLE and then
		// overwritten with MODE_PRIVATE before the staging call, so the
		// call must NOT be flagged world-readable. The backward goto makes
		// the benign overwrite appear *before* the world-readable const in
		// textual order — a flattened last-write-wins scan of the lines
		// resolves v3 to MODE_WORLD_READABLE and misclassifies the app;
		// only reaching definitions over the CFG get it right.
		b.WriteString("    goto :init_mode\n")
		b.WriteString(":fix_mode\n")
		b.WriteString("    const/4 v3, 0x0\n")
		b.WriteString("    goto :stage\n")
		b.WriteString(":init_mode\n")
		b.WriteString("    const/4 v3, MODE_WORLD_READABLE\n")
		b.WriteString("    goto :fix_mode\n")
		b.WriteString(":stage\n")
		b.WriteString("    invoke-virtual {p0, v2, v3}, Landroid/content/Context;->openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;\n")
	case StorageInternalWorldReadable:
		// Internal staging: the APK is opened world-readable, but only on
		// one arm of a branch — the mode register defaults to
		// MODE_PRIVATE and is reassigned to MODE_WORLD_READABLE on the
		// world-readable path. Both definitions reach the call through
		// the join, so a may-analysis over the CFG flags it; matching on
		// the call line alone (or a single flattened register value)
		// cannot.
		b.WriteString("    const-string v2, \"stage.apk\"\n")
		b.WriteString("    const/4 v3, 0x0\n")
		b.WriteString("    if-eqz v5, :world_readable\n")
		b.WriteString("    goto :stage\n")
		b.WriteString(":world_readable\n")
		b.WriteString("    const/4 v3, MODE_WORLD_READABLE\n")
		b.WriteString(":stage\n")
		b.WriteString("    invoke-virtual {p0, v2, v3}, Landroid/content/Context;->openFileOutput(Ljava/lang/String;I)Ljava/io/FileOutputStream;\n")
	case StorageUnclear:
		// Reflection-built API names and dynamically assembled paths:
		// exactly the pattern that defeated the Flowdroid attempt.
		b.WriteString("    const-string v2, \"open\"\n")
		b.WriteString("    const-string v3, \"File\"\n")
		b.WriteString("    const-string v4, \"Output\"\n")
		b.WriteString("    invoke-static {v2, v3, v4}, Lcom/obf/Reflect;->call([Ljava/lang/String;)Ljava/lang/Object;\n")
		b.WriteString("    invoke-virtual {p0}, Lcom/obf/Path;->assemble()Ljava/lang/String;\n")
	}
	b.WriteString("    return-void\n")
	b.WriteString(".end method\n")
	// A second method reusing the mode register without defining it: defs
	// must not leak across method boundaries into this call.
	b.WriteString(".method private touchStageFile()V\n")
	b.WriteString("    invoke-virtual {v9, v3}, Ljava/io/File;->setReadable(Z)Z\n")
	b.WriteString("    return-void\n")
	b.WriteString(".end method\n")
	return b.String()
}

// redirectSmali emits the hard-coded Play URLs/schemes of Table IV.
func redirectSmali(meta AppMeta) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".class public L%s/Redirects;\n", slashed(meta.Package))
	b.WriteString(".method public promote()V\n")
	for i := 0; i < meta.MarketLinks; i++ {
		target := fmt.Sprintf("com.promoted.app%d", i)
		if i%2 == 0 {
			fmt.Fprintf(&b, "    const-string v%d, \"market://details?id=%s\"\n", i%16, target)
		} else {
			fmt.Fprintf(&b, "    const-string v%d, \"http://play.google.com/store/apps/details?id=%s\"\n", i%16, target)
		}
	}
	b.WriteString("    return-void\n")
	b.WriteString(".end method\n")
	return b.String()
}

func slashed(pkg string) string { return strings.ReplaceAll(pkg, ".", "/") }

func shortName(pkg string) string {
	if idx := strings.LastIndex(pkg, "."); idx >= 0 {
		return pkg[idx+1:]
	}
	return pkg
}
