package corpus

import (
	"strings"
	"testing"
)

func TestGeneratePopulationSizes(t *testing.T) {
	c := Generate(Config{Seed: 1, Scale: 1.0})
	if len(c.PlayApps) != 12750 {
		t.Errorf("play apps = %d, want 12750", len(c.PlayApps))
	}
	if len(c.Images) != 1239+382+234 {
		t.Errorf("images = %d, want 1855", len(c.Images))
	}
	if len(c.StoreApps) < 100000 {
		t.Errorf("store apps = %d", len(c.StoreApps))
	}
}

func TestDefaultScale(t *testing.T) {
	c := Generate(Config{Seed: 1}) // Scale 0 defaults to 1.0
	if len(c.PlayApps) != 12750 {
		t.Errorf("play apps with default scale = %d", len(c.PlayApps))
	}
}

func TestPlayAppGroundTruthConsistency(t *testing.T) {
	c := Generate(Config{Seed: 3, Scale: 0.3})
	for _, app := range c.PlayApps {
		if app.Package == "" || app.Signer == "" {
			t.Fatalf("incomplete app: %+v", app)
		}
		// Storage behaviour only exists for installer-capable apps.
		if !app.HasInstallAPI && app.Storage != StorageNone {
			t.Fatalf("non-installer %s has storage behaviour %v", app.Package, app.Storage)
		}
		if app.HasInstallAPI && app.Storage == StorageNone {
			t.Fatalf("installer %s lacks storage behaviour", app.Package)
		}
		// Every SD-card installer needs the storage permission.
		if app.Storage == StorageSDCard && !app.UsesWriteExternal {
			t.Fatalf("SD-card installer %s lacks WRITE_EXTERNAL_STORAGE", app.Package)
		}
		if app.MarketLinks < 0 || app.MarketLinks > 50 {
			t.Fatalf("market links = %d", app.MarketLinks)
		}
	}
}

func TestImagesBelongToTheirVendor(t *testing.T) {
	c := Generate(Config{Seed: 5, Scale: 0.1})
	for _, img := range c.Images {
		if img.Vendor == "" || img.Model == "" || img.Region == "" || img.Version == "" {
			t.Fatalf("incomplete image: %+v", img)
		}
		if !strings.HasPrefix(img.Model, img.Vendor+"-model-") {
			t.Fatalf("model %q does not match vendor %q", img.Model, img.Vendor)
		}
		if len(img.Apps) < 20 {
			t.Fatalf("image %s has only %d apps", img.Model, len(img.Apps))
		}
		for _, app := range img.Apps {
			if app.Vendor != img.Vendor {
				t.Fatalf("app %s (vendor %s) on a %s image", app.Package, app.Vendor, img.Vendor)
			}
			if app.Platform && app.Signer != img.Vendor+"-platform" {
				t.Fatalf("platform app %s signed by %q", app.Package, app.Signer)
			}
		}
	}
}

func TestImageAppsSortedAndUniqueWithinImage(t *testing.T) {
	c := Generate(Config{Seed: 7, Scale: 0.05})
	for _, img := range c.Images {
		seen := make(map[string]bool, len(img.Apps))
		for i, app := range img.Apps {
			if i > 0 && img.Apps[i-1].Package > app.Package {
				t.Fatalf("image %s apps unsorted at %d", img.Model, i)
			}
			if seen[app.Package] {
				t.Fatalf("image %s lists %s twice", img.Model, app.Package)
			}
			seen[app.Package] = true
		}
	}
}

func TestHarePairsAreConsistent(t *testing.T) {
	c := Generate(Config{Seed: 9, Scale: 0.2})
	// Every hare-user's permission must be defined by exactly one app in
	// the vendor's universe (the matching definer).
	definers := make(map[string]string) // perm -> package
	users := make(map[string][]string)  // perm -> packages
	for _, img := range c.Images {
		for _, app := range img.Apps {
			for _, p := range app.DefinesPerms {
				definers[p] = app.Package
			}
			for _, p := range app.UsesPerms {
				users[p] = append(users[p], app.Package)
			}
		}
	}
	if len(users) == 0 {
		t.Fatal("no hare-user apps generated")
	}
	for p := range users {
		if _, ok := definers[p]; !ok {
			t.Fatalf("permission %s used but never defined anywhere in the universe", p)
		}
	}
}

func TestStoreAppsIncludePlatformSigned(t *testing.T) {
	c := Generate(Config{Seed: 11, Scale: 0.5})
	counts := make(map[string]int)
	for _, app := range c.StoreApps {
		if app.Platform {
			counts[app.Vendor]++
		}
	}
	for _, vendor := range []string{"samsung", "huawei", "xiaomi"} {
		if counts[vendor] == 0 {
			t.Errorf("no platform-signed store apps for %s", vendor)
		}
	}
}
