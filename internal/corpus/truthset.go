package corpus

// TruthCase is one hand-labelled APK configuration in the taint /
// anti-repackaging truth set. Each case pins, per detector, whether the
// analysis engine MUST (true positive) or MUST NOT (true negative) fire
// on the artifact BuildAPKFor materializes for Meta. The measure-side
// accuracy gate (TestTruthSetAccuracy) requires 100% on every case —
// any drift in the templates or the rules trips it.
type TruthCase struct {
	Name string
	Meta AppMeta

	// Expected detector verdicts over the built artifact.
	WantTaintStaging  bool // gia/taint-sdcard-staging
	WantSDCardStaging bool // gia/sdcard-staging (intraprocedural literal)
	WantSelfSigCheck  bool // gia/self-sig-check
	WantIntegrity     bool // gia/integrity-check
}

// TruthSet returns the pinned TP/TN corpus for the interprocedural taint
// rule and the anti-repackaging detectors. The set is deliberately small
// and fully labelled: every case either exhibits exactly the pattern a
// detector targets, or a near-miss that a sloppy substring match would
// confuse with it.
func TruthSet() []TruthCase {
	return []TruthCase{
		{
			// TP: the staging path flows from an Environment getter in a
			// helper method into the install sink — no /sdcard literal
			// exists, so only the taint rule can catch it.
			Name: "cross-method-staging",
			Meta: AppMeta{
				Package:            "com.truth.xmethod",
				HasInstallAPI:      true,
				Storage:            StorageSDCard,
				CrossMethodStaging: true,
			},
			WantTaintStaging: true,
		},
		{
			// TP for both staging detectors: the literal /sdcard path is a
			// same-method flow, which the taint rule also sees (containment:
			// interprocedural ⊇ intraprocedural on direct flows is pinned by
			// FuzzSummaries; here we pin it on a real artifact).
			Name: "literal-sdcard-staging",
			Meta: AppMeta{
				Package:       "com.truth.literal",
				HasInstallAPI: true,
				Storage:       StorageSDCard,
			},
			WantSDCardStaging: true,
		},
		{
			// TN: internal world-readable staging never touches external
			// storage; neither staging detector may fire.
			Name: "internal-staging",
			Meta: AppMeta{
				Package:       "com.truth.internal",
				HasInstallAPI: true,
				Storage:       StorageInternalWorldReadable,
			},
		},
		{
			// TN: reflection-obfuscated storage — the paths are assembled
			// dynamically, so the staging detectors must stay silent (the
			// app lands in the Unknown bucket, not a false positive).
			Name: "reflection-unclear",
			Meta: AppMeta{
				Package:       "com.truth.unclear",
				HasInstallAPI: true,
				Storage:       StorageUnclear,
			},
		},
		{
			// TP: self-signature check — getPackageInfo with GET_SIGNATURES
			// in the same method.
			Name: "self-sig-check",
			Meta: AppMeta{
				Package:       "com.truth.selfsig",
				HasInstallAPI: true,
				Storage:       StorageSDCard,
				SelfSigCheck:  true,
			},
			WantSDCardStaging: true,
			WantSelfSigCheck:  true,
		},
		{
			// TP: integrity check — classes.dex digested via MessageDigest.
			Name: "integrity-check",
			Meta: AppMeta{
				Package:        "com.truth.digest",
				HasInstallAPI:  true,
				Storage:        StorageSDCard,
				IntegrityCheck: true,
			},
			WantSDCardStaging: true,
			WantIntegrity:     true,
		},
		{
			// TN: every app (this one has no defenses enabled) carries the
			// benign near-misses — getPackageInfo WITHOUT the signatures
			// flag and a digest WITHOUT the code archive. Neither
			// anti-repackaging detector may fire on them.
			Name: "benign-near-miss",
			Meta: AppMeta{
				Package:       "com.truth.nearmiss",
				HasInstallAPI: true,
				Storage:       StorageNone,
			},
		},
		{
			// TN: a plain non-installer app — nothing fires at all.
			Name: "not-an-installer",
			Meta: AppMeta{
				Package: "com.truth.plain",
			},
		},
	}
}
