// Package corpus generates the synthetic app and factory-image corpora that
// stand in for the paper's measurement inputs: 12,750 top Google Play apps,
// 1,855 factory images from Samsung/Xiaomi/Huawei with 206,674 pre-installed
// APKs, and a large multi-store APK collection.
//
// The generator is seeded and calibrated so the *ground-truth marginals*
// (install-API prevalence, SD-card staging, world-readable staging,
// WRITE_EXTERNAL_STORAGE requests, hard-coded market links, INSTALL_PACKAGES
// prevalence, platform-key signing, hanging-permission usage) match the
// numbers reported in Section IV. The measurement pipeline in
// internal/measure then *re-derives* the paper's tables by running the same
// analyses the authors ran, over this corpus.
package corpus

import (
	"fmt"
	"math/rand"
	"sort"
)

// StorageUse describes how an installer-capable app stages APKs — the
// ground truth behind the classifier's verdicts.
type StorageUse int

// Staging behaviours.
const (
	// StorageNone: the app has no installation capability.
	StorageNone StorageUse = iota
	// StorageSDCard: stages on external storage without making the file
	// world-readable (the potentially vulnerable pattern).
	StorageSDCard
	// StorageInternalWorldReadable: stages internally and sets the APK
	// world-readable (the potentially secure pattern).
	StorageInternalWorldReadable
	// StorageUnclear: the implementation resists lightweight static
	// analysis (reflection, Handler indirection, packing).
	StorageUnclear
)

// AnalysisBlocker describes why heavyweight taint analysis fails on an app
// (Section IV-A's Flowdroid post-mortem).
type AnalysisBlocker int

// Blockers, with the failure shares the paper measured on its 43-app
// sample.
const (
	// BlockerNone: the app is analyzable by flow analysis.
	BlockerNone AnalysisBlocker = iota
	// BlockerIncompleteCFG: analysis stopped by an incomplete
	// control-flow graph (14%).
	BlockerIncompleteCFG
	// BlockerHandlerIndirection: taint lost through
	// Handler.handleMessage indirection (14%).
	BlockerHandlerIndirection
	// BlockerAnalyzerBug: the analyzer itself crashed or wedged (42%).
	BlockerAnalyzerBug
)

// AppMeta is the static-analysis view of one APK: exactly the features the
// Section IV tooling extracts.
type AppMeta struct {
	Package     string
	VersionCode int
	Signer      string // key subject
	Platform    bool   // signed with the vendor's platform key
	Vendor      string // owning vendor for pre-installed apps

	HasInstallAPI bool // contains the package-archive install code
	Storage       StorageUse

	// CrossMethodStaging (meaningful for StorageSDCard installers) stages
	// through a helper method: the external-storage path is produced by an
	// Environment getter in one method and consumed by the install sink in
	// another, with no /sdcard literal anywhere — detectable only by the
	// interprocedural taint rule.
	CrossMethodStaging bool
	// SelfSigCheck: the app verifies its own signing certificate
	// (anti-repackaging defense; lowers the threat score).
	SelfSigCheck bool
	// IntegrityCheck: the app digests its own code archive
	// (anti-repackaging defense; lowers the threat score).
	IntegrityCheck bool

	UsesWriteExternal bool
	UsesInstallPkgs   bool // requests INSTALL_PACKAGES

	DefinesPerms []string
	UsesPerms    []string // custom permissions used (may be hanging)

	MarketLinks int // count of hard-coded Play URLs/market: schemes

	// Blocker records whether heavyweight flow analysis can handle the
	// app (meaningful for installer-capable apps).
	Blocker AnalysisBlocker
}

// FactoryImage is one firmware build.
type FactoryImage struct {
	Vendor  string
	Model   string
	Region  string
	Version string // Android version
	Apps    []AppMeta
}

// Corpus bundles the three populations.
type Corpus struct {
	PlayApps  []AppMeta      // top free Play apps
	Images    []FactoryImage // factory images
	StoreApps []AppMeta      // apps crawled from 33 appstores
}

// Config parameterizes generation. Scale multiplies every population size;
// 1.0 reproduces the paper's counts exactly, smaller values give fast test
// corpora with the same proportions.
type Config struct {
	Seed  int64
	Scale float64
}

// Paper population constants (Section IV-A).
const (
	paperPlayApps = 12750

	paperSamsungImages = 1239
	paperXiaomiImages  = 382
	paperHuaweiImages  = 234

	paperStoreApps = 120_000 // scaled-down stand-in for the 1.2M crawl
)

// vendorSpec captures the per-vendor marginals of Tables V/VI and the
// platform-key study.
type vendorSpec struct {
	name            string
	images          int
	models          int
	avgSystemApps   int     // Table VI denominator (Samsung: 206)
	installPkgRatio float64 // Table VI ratio
	platformPerDev  int     // avg platform-signed apps per device
	platformTotal   int     // distinct platform-signed apps overall
	storeSigned     int     // store apps signed with this platform key
	poolSize        int     // distinct pre-installable apps
}

func vendorSpecs() []vendorSpec {
	return []vendorSpec{
		{name: "samsung", images: paperSamsungImages, models: 849, avgSystemApps: 206,
			installPkgRatio: 0.0845, platformPerDev: 142, platformTotal: 884, storeSigned: 61, poolSize: 2600},
		{name: "xiaomi", images: paperXiaomiImages, models: 149, avgSystemApps: 140,
			installPkgRatio: 0.1187, platformPerDev: 84, platformTotal: 216, storeSigned: 30, poolSize: 1200},
		{name: "huawei", images: paperHuaweiImages, models: 135, avgSystemApps: 150,
			installPkgRatio: 0.1032, platformPerDev: 68, platformTotal: 301, storeSigned: 125, poolSize: 1300},
	}
}

// Play-app marginals (Tables II and IV, plus in-text numbers).
const (
	playInstallers       = 1493 // apps with installation API calls
	playVulnerable       = 779  // SD card, not world-readable
	playSecure           = 152  // internal, world-readable
	playWriteExternal    = 8721 // request WRITE_EXTERNAL_STORAGE
	playRedirectingFrac  = 0.847
	playLinks1           = 723
	playLinksLE2         = 1405
	playLinksLE4         = 2090
	playLinksLE8         = 2337
	preinstInstallerFrac = 238.0 / 1613.0 // unique pre-installed apps with install APIs
	preinstVulnFrac      = 102.0 / 238.0
	preinstSecureFrac    = 3.0 / 238.0
	preinstWriteExtFrac  = 5864.0 / 12050.0
)

// Hare calibration. The paper extracted 178 seed apps from 10 Samsung
// images and found ≈23.5 vulnerable cases per image. A seed pair is only
// *discovered* if it shows up undefined in one of the 10 seed images
// (capture rate 1-(1-0.3·0.44)^10 ≈ 0.757), so the underlying pair count is
// 178/0.757 ≈ 235.
const (
	harePairsSamsung  = 235
	hareSeedInclude   = 0.30 // P(image includes a given hare-seed app)
	hareDefinerAbsent = 0.44 // P(the defining app is absent from the image)
)

// Generate builds a corpus.
func Generate(cfg Config) *Corpus {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	// Each phase gets an independent stream so adding draws to one phase
	// cannot shift another's output.
	c := &Corpus{}
	c.PlayApps = generatePlay(rand.New(rand.NewSource(cfg.Seed)), cfg.Scale)
	c.Images = generateImages(rand.New(rand.NewSource(cfg.Seed+1)), cfg.Scale)
	c.StoreApps = generateStoreApps(rand.New(rand.NewSource(cfg.Seed+2)), cfg.Scale)
	assignScenarioDiversity(c)
	return c
}

// Scenario-diversity marginals: the share of SD-card installers staging
// through a helper method, and the anti-repackaging defense shares among
// installer-capable apps.
const (
	crossMethodFrac  = 0.30
	selfSigCheckFrac = 0.15
	integrityFrac    = 0.10
)

// assignScenarioDiversity sets the PR 6 feature flags in a post-pass. The
// draw is a pure function of the package name (an FNV hash), not an rng
// stream: it cannot shift any existing phase's draws, and a pool app
// copied into many factory images gets the same flags in every copy.
func assignScenarioDiversity(c *Corpus) {
	each := func(apps []AppMeta) {
		for i := range apps {
			assignAppScenario(&apps[i])
		}
	}
	each(c.PlayApps)
	each(c.StoreApps)
	for i := range c.Images {
		each(c.Images[i].Apps)
	}
}

func assignAppScenario(app *AppMeta) {
	if app.Storage == StorageSDCard {
		app.CrossMethodStaging = hashFrac(app.Package, "xmethod") < crossMethodFrac
	}
	if app.HasInstallAPI {
		app.SelfSigCheck = hashFrac(app.Package, "selfsig") < selfSigCheckFrac
		app.IntegrityCheck = hashFrac(app.Package, "digest") < integrityFrac
	}
}

// hashFrac maps (name, salt) to a uniform-ish fraction in [0, 1) with a
// 64-bit FNV-1a hash — deterministic across runs, processes and corpus
// positions.
func hashFrac(name, salt string) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	h ^= '/'
	h *= prime64
	for i := 0; i < len(salt); i++ {
		h ^= uint64(salt[i])
		h *= prime64
	}
	return float64(h>>11) / float64(uint64(1)<<53)
}

func scaleCount(n int, scale float64) int {
	out := int(float64(n)*scale + 0.5)
	if out < 1 && n > 0 {
		out = 1
	}
	return out
}

// generatePlay builds the top-Play population with exact category counts
// (scaled), then shuffles.
func generatePlay(rng *rand.Rand, scale float64) []AppMeta {
	total := scaleCount(paperPlayApps, scale)
	installers := scaleCount(playInstallers, scale)
	vulnerable := scaleCount(playVulnerable, scale)
	secure := scaleCount(playSecure, scale)
	writeExt := scaleCount(playWriteExternal, scale)
	if vulnerable+secure > installers {
		installers = vulnerable + secure
	}

	apps := make([]AppMeta, total)
	for i := range apps {
		apps[i] = AppMeta{
			Package:     fmt.Sprintf("com.play.app%05d", i),
			VersionCode: 1 + rng.Intn(40),
			Signer:      fmt.Sprintf("play-dev-%04d", rng.Intn(total/2+1)),
			MarketLinks: drawMarketLinks(rng),
		}
	}
	// Assign installer categories to the first `installers` apps, then
	// shuffle so position carries no signal.
	for i := 0; i < installers && i < total; i++ {
		apps[i].HasInstallAPI = true
		switch {
		case i < vulnerable:
			apps[i].Storage = StorageSDCard
		case i < vulnerable+secure:
			apps[i].Storage = StorageInternalWorldReadable
		default:
			apps[i].Storage = StorageUnclear
		}
		apps[i].Blocker = drawBlocker(rng)
	}
	rng.Shuffle(total, func(i, j int) { apps[i], apps[j] = apps[j], apps[i] })
	// WRITE_EXTERNAL_STORAGE marginal; every SD-card installer needs it.
	granted := 0
	for i := range apps {
		if apps[i].Storage == StorageSDCard {
			apps[i].UsesWriteExternal = true
			granted++
		}
	}
	for i := range apps {
		if granted >= writeExt {
			break
		}
		if !apps[i].UsesWriteExternal {
			apps[i].UsesWriteExternal = true
			granted++
		}
	}
	return apps
}

// drawBlocker reproduces the Section IV-A Flowdroid failure shares.
func drawBlocker(rng *rand.Rand) AnalysisBlocker {
	r := rng.Float64()
	switch {
	case r < 0.14:
		return BlockerIncompleteCFG
	case r < 0.28:
		return BlockerHandlerIndirection
	case r < 0.70:
		return BlockerAnalyzerBug
	default:
		return BlockerNone
	}
}

// drawMarketLinks reproduces the Table IV bucket distribution.
func drawMarketLinks(rng *rand.Rand) int {
	if rng.Float64() >= playRedirectingFrac {
		return 0
	}
	// Conditional bucket probabilities among redirecting apps.
	redirecting := playRedirectingFrac * paperPlayApps
	r := rng.Float64() * redirecting
	switch {
	case r < playLinks1:
		return 1
	case r < playLinksLE2:
		return 2
	case r < playLinksLE4:
		return 3 + rng.Intn(2) // 3..4
	case r < playLinksLE8:
		return 5 + rng.Intn(4) // 5..8
	default:
		return 9 + rng.Intn(42) // 9..50
	}
}

// generateImages builds the per-vendor factory-image population, including
// the app pools that drive the platform-key and Hare studies.
func generateImages(rng *rand.Rand, scale float64) []FactoryImage {
	var images []FactoryImage
	regions := []string{"XAR", "VZW", "TMB", "DBT", "CHC", "INS", "BTU", "KOO", "SKZ", "ATT"}
	versions := []string{"4.0.3", "4.1.2", "4.4.4", "5.0.1", "5.1.1"}
	for _, spec := range vendorSpecs() {
		pool := buildVendorPool(rng, spec, scale)
		nImages := scaleCount(spec.images, scale)
		nModels := scaleCount(spec.models, scale)
		for i := 0; i < nImages; i++ {
			img := FactoryImage{
				Vendor:  spec.name,
				Model:   fmt.Sprintf("%s-model-%03d", spec.name, i%max(nModels, 1)),
				Region:  regions[rng.Intn(len(regions))],
				Version: versions[rng.Intn(len(versions))],
				Apps:    sampleImageApps(rng, spec, pool),
			}
			images = append(images, img)
		}
	}
	return images
}

// vendorPool is the vendor's universe of pre-installable apps.
type vendorPool struct {
	apps []AppMeta
	// hareSeeds/hareDefiners pair: seeds use a permission only the
	// matching definer declares.
	hareSeeds    []AppMeta
	hareDefiners []AppMeta
}

func buildVendorPool(rng *rand.Rand, spec vendorSpec, scale float64) vendorPool {
	var pool vendorPool
	platformKey := spec.name + "-platform"
	nPool := spec.poolSize
	// Hare pairs are platform-signed and count toward the vendor's
	// distinct platform-signed package total.
	nPairs := scaleCount(harePairsSamsung, scale) * spec.models / totalModels()
	if spec.name == "samsung" {
		nPairs = scaleCount(harePairsSamsung, scale)
	}
	platformTotal := spec.platformTotal - 2*nPairs
	if platformTotal < 0 {
		platformTotal = 0
	}
	for i := 0; i < nPool; i++ {
		app := AppMeta{
			Package:     fmt.Sprintf("com.%s.sys%04d", spec.name, i),
			VersionCode: 1 + rng.Intn(10),
			Vendor:      spec.name,
		}
		if i < platformTotal {
			app.Signer = platformKey
			app.Platform = true
		} else {
			app.Signer = fmt.Sprintf("%s-oem-%03d", spec.name, rng.Intn(60))
		}
		if rng.Float64() < preinstWriteExtFrac {
			app.UsesWriteExternal = true
		}
		// Installer behaviour mirroring the pre-installed marginals.
		if rng.Float64() < preinstInstallerFrac {
			app.HasInstallAPI = true
			app.Blocker = drawBlocker(rng)
			r := rng.Float64()
			switch {
			case r < preinstVulnFrac:
				app.Storage = StorageSDCard
				app.UsesWriteExternal = true
			case r < preinstVulnFrac+preinstSecureFrac:
				app.Storage = StorageInternalWorldReadable
			default:
				app.Storage = StorageUnclear
			}
		}
		pool.apps = append(pool.apps, app)
	}
	// INSTALL_PACKAGES is assigned by exact count so the Table VI ratio
	// holds at every seed (per-image sampling still adds honest noise).
	installCount := int(float64(nPool)*spec.installPkgRatio + 0.5)
	for _, idx := range rng.Perm(nPool)[:installCount] {
		pool.apps[idx].UsesInstallPkgs = true
	}
	// Hare pairs: platform-signed seeds using a permission defined only
	// by a companion app. Like any other system app, they may also hold
	// INSTALL_PACKAGES and the storage permission.
	for i := 0; i < nPairs; i++ {
		permName := fmt.Sprintf("com.%s.hare%03d.permission.READ", spec.name, i)
		seed := AppMeta{
			Package:     fmt.Sprintf("com.%s.hareuser%03d", spec.name, i),
			VersionCode: 1,
			Vendor:      spec.name,
			Signer:      platformKey,
			Platform:    true,
			UsesPerms:   []string{permName},
		}
		definer := AppMeta{
			Package:      fmt.Sprintf("com.%s.haredef%03d", spec.name, i),
			VersionCode:  1,
			Vendor:       spec.name,
			Signer:       platformKey,
			Platform:     true,
			DefinesPerms: []string{permName},
		}
		for _, app := range []*AppMeta{&seed, &definer} {
			if rng.Float64() < spec.installPkgRatio {
				app.UsesInstallPkgs = true
			}
			if rng.Float64() < preinstWriteExtFrac {
				app.UsesWriteExternal = true
			}
		}
		pool.hareSeeds = append(pool.hareSeeds, seed)
		pool.hareDefiners = append(pool.hareDefiners, definer)
	}
	return pool
}

func totalModels() int {
	t := 0
	for _, s := range vendorSpecs() {
		t += s.models
	}
	return t
}

// sampleImageApps picks one image's pre-installed set: hare pairs first
// (they are platform-signed system apps and count toward both the size and
// platform-per-device targets), then platform-signed pool apps up to the
// per-device average, then ordinary pool apps.
func sampleImageApps(rng *rand.Rand, spec vendorSpec, pool vendorPool) []AppMeta {
	nApps := spec.avgSystemApps + rng.Intn(21) - 10 // ±10 around the average
	if nApps < 20 {
		nApps = 20
	}
	var apps []AppMeta
	for i := range pool.hareSeeds {
		if rng.Float64() < hareSeedInclude {
			apps = append(apps, pool.hareSeeds[i])
			if rng.Float64() >= hareDefinerAbsent {
				apps = append(apps, pool.hareDefiners[i])
			}
		}
	}
	platformGot := len(apps) // all hare apps are platform-signed
	otherGot := 0
	platformWant := spec.platformPerDev
	otherWant := nApps - spec.platformPerDev
	perm := rng.Perm(len(pool.apps))
	for _, idx := range perm {
		app := pool.apps[idx]
		if app.Platform && platformGot < platformWant {
			apps = append(apps, app)
			platformGot++
		} else if !app.Platform && otherGot < otherWant {
			apps = append(apps, app)
			otherGot++
		}
		if platformGot >= platformWant && otherGot >= otherWant {
			break
		}
	}
	sort.Slice(apps, func(i, j int) bool { return apps[i].Package < apps[j].Package })
	return apps
}

// generateStoreApps builds the multi-store crawl with the platform-key
// signing counts of the key study.
func generateStoreApps(rng *rand.Rand, scale float64) []AppMeta {
	total := scaleCount(paperStoreApps, scale)
	apps := make([]AppMeta, 0, total)
	// Vendor-platform-signed store apps (MDM, remote support, VPN,
	// backup — and TeamViewer).
	for _, spec := range vendorSpecs() {
		n := scaleCount(spec.storeSigned, scale)
		for i := 0; i < n; i++ {
			apps = append(apps, AppMeta{
				Package:     fmt.Sprintf("com.store.%s.tool%03d", spec.name, i),
				VersionCode: 1 + rng.Intn(5),
				Signer:      spec.name + "-platform",
				Platform:    true,
				Vendor:      spec.name,
			})
		}
	}
	for len(apps) < total {
		i := len(apps)
		apps = append(apps, AppMeta{
			Package:     fmt.Sprintf("com.store.app%06d", i),
			VersionCode: 1 + rng.Intn(20),
			Signer:      fmt.Sprintf("store-dev-%05d", rng.Intn(total/3+1)),
		})
	}
	rng.Shuffle(len(apps), func(i, j int) { apps[i], apps[j] = apps[j], apps[i] })
	return apps
}
