package chaos

import (
	"time"

	"github.com/ghost-installer/gia/internal/fault"
	"github.com/ghost-installer/gia/internal/obs"
	"github.com/ghost-installer/gia/internal/sim"
)

// RunFunc builds one world, attaches it to the run, drives it, and checks
// the invariant. It must construct everything — scheduler, device, apps —
// from r.Seed() alone, call r.Attach on the scheduler (and r.Inject on any
// other substrate it wants faulted) before driving the clock, and return a
// non-nil error exactly when the invariant does not hold for this schedule.
type RunFunc func(r *Run) error

// Run is the harness's view of one execution: the schedule being imposed
// and the fault plan clone serving it.
type Run struct {
	schedule Schedule
	plan     *FaultPlan // nil-safe composite: user rules + jitter rule
	arb      *arbiter
	// track is the run's virtual-time trace lane, named by the imposed
	// schedule's token so exports are deterministic at any worker count.
	// Nil unless the explorer has a Trace attached.
	track *obs.Track
	// state is the pool worker's shared state (Explorer.WorkerState), nil
	// when the explorer has no state factory.
	state any
	// recordFP makes Attach install the footprint-aware arbiter so the
	// explorer can prune commuting sibling orderings. Only ExploreOrders
	// sets it: sweeps and checks never read footprints, so their arbiter
	// stays on the cheaper untagged path.
	recordFP bool
}

// newRun prepares a run for schedule, deriving the run-local fault plan
// from base (which may be nil).
func newRun(schedule Schedule, base *FaultPlan) *Run {
	plan := base.Clone(schedule.Seed)
	if schedule.Jitter > 0 {
		plan = plan.Extend(schedule.Seed, Rule{
			Site: fault.SiteSimEvent, Kind: fault.KindDelay, MaxJitter: schedule.Jitter,
		})
	}
	return &Run{
		schedule: schedule,
		plan:     plan,
		arb:      &arbiter{prefix: schedule.Choices},
	}
}

// Seed is the scheduler seed the RunFunc must build its world from.
func (r *Run) Seed() int64 { return r.schedule.Seed }

// Jitter reports the event-jitter bound of this run's schedule.
func (r *Run) Jitter() time.Duration { return r.schedule.Jitter }

// Schedule reports the schedule imposed on this run. Calling it after the
// run completes yields the fully resolved choice sequence (the imposed
// prefix plus every default choice actually taken), which is the replay
// token for what happened.
func (r *Run) Schedule() Schedule {
	s := r.schedule.clone()
	if len(r.arb.choices) > 0 {
		s.Choices = append([]int(nil), r.arb.choices...)
	}
	return s
}

// State returns the pool worker's shared state built by the explorer's
// WorkerState factory (nil without one). The canonical use is a device
// arena: the RunFunc acquires a device for r.Seed() instead of booting one.
func (r *Run) State() any { return r.state }

// Hits reports the faults injected so far in this run.
func (r *Run) Hits() []Hit { return r.plan.Hits() }

// Track returns the run's virtual-time trace track — nil (a no-op track)
// unless the explorer carries a Trace. RunFuncs use it to record what the
// schedule did in simulated time: AIT outcomes, timeline exports,
// invariant verdicts.
func (r *Run) Track() *obs.Track { return r.track }

// Attach imposes the run's schedule on s: the arbiter that replays (then
// records) same-instant choices, and the fault plan as s's injector. Call
// it once, before driving the clock.
func (r *Run) Attach(s *sim.Scheduler, targets ...fault.Target) {
	if r.recordFP {
		s.SetTaggedArbiter(r.arb.chooseTagged)
	} else {
		s.SetArbiter(r.arb.choose)
	}
	s.SetFaultInjector(r.plan)
	// Bind the run's trace track to this world's virtual clock, so Begin
	// and Instant read simulated time.
	r.track.SetClock(s.Now)
	r.Inject(targets...)
}

// Inject installs the run's fault plan on additional substrates (vfs.FS,
// dm.Manager, fuse.Daemon, intents.AMS — anything with SetFaultInjector).
func (r *Run) Inject(targets ...fault.Target) {
	for _, t := range targets {
		if t != nil {
			t.SetFaultInjector(r.plan)
		}
	}
}

// arbiter replays a choice prefix and records the full decision trace: the
// choice taken and the branch factor (number of runnable candidates) at
// every contended instant. The explorer reads branches to know where the
// run could have gone differently.
type arbiter struct {
	prefix   []int
	pos      int
	choices  []int
	branches []int
	// commuting[i] reports that at contended instant i every candidate
	// carried a non-opaque footprint and all pairs were pairwise
	// independent — the whole tie commutes, so every ordering of it
	// reaches the same state (see Result.PORSkipped). Only populated by
	// chooseTagged; empty under the plain arbiter.
	commuting []bool
}

// choose implements sim.Arbiter. Within the prefix it replays the recorded
// choice (clamped into range, so stale prefixes stay valid executions);
// past it, FIFO order (index 0).
func (a *arbiter) choose(n int) int {
	c := 0
	if a.pos < len(a.prefix) {
		if pc := a.prefix[a.pos]; pc > 0 && pc < n {
			c = pc
		}
	}
	a.pos++
	a.choices = append(a.choices, c)
	a.branches = append(a.branches, n)
	return c
}

// chooseTagged implements sim.TaggedArbiter: the same replay-then-record
// semantics as choose, plus a per-instant commutation verdict over the
// candidates' footprints.
func (a *arbiter) chooseTagged(n int, fps []sim.Footprint) int {
	a.commuting = append(a.commuting, allCommute(fps))
	return a.choose(n)
}

// allCommute reports whether every pair of candidate footprints is
// independent. An opaque footprint fails every pair, so one untagged event
// in a tie disables pruning for the whole instant.
func allCommute(fps []sim.Footprint) bool {
	for i := range fps {
		for j := i + 1; j < len(fps); j++ {
			if !fps[i].Independent(fps[j]) {
				return false
			}
		}
	}
	return true
}
