package chaos

import (
	"reflect"
	"testing"
	"time"
)

func TestParseTokenRejectsNonCanonicalEmptySegment(t *testing.T) {
	// "no choices" is spelled "-"; the empty segment used to alias it,
	// breaking Token/Parse bijectivity (and with it replay-token dedup).
	if _, err := ParseToken("gia1:42:5ms:"); err == nil {
		t.Fatal("empty choices segment accepted")
	}
	s, err := ParseToken("gia1:42:5ms:-")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Choices) != 0 {
		t.Fatalf("choices = %v", s.Choices)
	}
}

func TestParseTokenRejectsNegativeJitter(t *testing.T) {
	if _, err := ParseToken("gia1:1:-5ms:-"); err == nil {
		t.Fatal("negative jitter accepted")
	}
}

func TestParseTokenCanonicalizes(t *testing.T) {
	// Non-canonical spellings parse, but re-render to the one canonical
	// token — the dedup key for replay tokens.
	for noncanon, canon := range map[string]string{
		"gia1:+42:5ms:0.2.1":   "gia1:42:5ms:0.2.1",
		"gia1:042:5ms:-":       "gia1:42:5ms:-",
		"gia1:7:5000µs:-":      "gia1:7:5ms:-",
		"gia1:7:0s:+1.02":      "gia1:7:0s:1.2",
		" gia1:7:1m0s:- ":      "gia1:7:1m0s:-",
		"gia1:-3:1500ms:0.0.3": "gia1:-3:1.5s:0.0.3",
	} {
		s, err := ParseToken(noncanon)
		if err != nil {
			t.Errorf("ParseToken(%q): %v", noncanon, err)
			continue
		}
		if got := s.Token(); got != canon {
			t.Errorf("ParseToken(%q).Token() = %q, want %q", noncanon, got, canon)
		}
	}
}

// FuzzTokenRoundTrip pins the two halves of the Token/Parse bijection:
// ParseToken(s.Token()) == s for any constructible schedule, and for any
// accepted input string, parse→Token→parse is a fixpoint (one canonical
// string per schedule).
func FuzzTokenRoundTrip(f *testing.F) {
	f.Add(int64(42), int64(5*time.Millisecond), []byte{0, 2, 1}, "gia1:42:5ms:0.2.1")
	f.Add(int64(-7), int64(0), []byte{}, "gia1:+42:5ms:")
	f.Add(int64(0), int64(time.Hour+time.Nanosecond), []byte{255}, "gia1:007:5000µs:-")
	f.Add(int64(1), int64(time.Second), []byte{0, 0}, "gia1:1:1500ms:+0.00.3")
	f.Fuzz(func(t *testing.T, seed, jitterNs int64, choiceBytes []byte, raw string) {
		if jitterNs < 0 {
			jitterNs = 0
		}
		s := Schedule{Seed: seed, Jitter: time.Duration(jitterNs)}
		for _, c := range choiceBytes {
			s.Choices = append(s.Choices, int(c))
		}
		got, err := ParseToken(s.Token())
		if err != nil {
			t.Fatalf("ParseToken(%q): %v", s.Token(), err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("round trip: %q parsed to %+v, want %+v", s.Token(), got, s)
		}

		p1, err := ParseToken(raw)
		if err != nil {
			return // malformed inputs only need to be rejected consistently
		}
		canon := p1.Token()
		p2, err := ParseToken(canon)
		if err != nil {
			t.Fatalf("canonical token %q does not reparse: %v", canon, err)
		}
		if p2.Token() != canon {
			t.Fatalf("not a fixpoint: %q → %q → %q", raw, canon, p2.Token())
		}
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("canonical reparse differs: %+v vs %+v", p1, p2)
		}
	})
}
