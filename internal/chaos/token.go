package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Schedule names one deterministic execution: the scheduler seed, the event
// jitter bound, and the arbiter choice sequence resolving same-instant ties.
// Everything else a run does follows from these three values (plus the
// fault plan, which the harness owns), so a Schedule doubles as a replay
// token.
type Schedule struct {
	Seed   int64
	Jitter time.Duration
	// Choices are arbiter decisions in probe order: Choices[i] is the index
	// (into FIFO order) of the event fired at the i-th contended instant.
	// Past the end of the slice the arbiter defaults to FIFO (index 0), so
	// a short prefix names a full execution.
	Choices []int
}

// tokenPrefix versions the wire format; bump it if Schedule gains fields.
const tokenPrefix = "gia1"

// Token renders the schedule as a compact string, e.g.
// "gia1:42:5ms:0.2.1". The empty choice sequence renders as "-".
func (s Schedule) Token() string {
	var b strings.Builder
	b.WriteString(tokenPrefix)
	b.WriteByte(':')
	b.WriteString(strconv.FormatInt(s.Seed, 10))
	b.WriteByte(':')
	b.WriteString(s.Jitter.String())
	b.WriteByte(':')
	if len(s.Choices) == 0 {
		b.WriteByte('-')
	} else {
		for i, c := range s.Choices {
			if i > 0 {
				b.WriteByte('.')
			}
			b.WriteString(strconv.Itoa(c))
		}
	}
	return b.String()
}

func (s Schedule) String() string { return s.Token() }

// clone returns a deep copy (Choices is the only reference field).
func (s Schedule) clone() Schedule {
	s.Choices = append([]int(nil), s.Choices...)
	return s
}

// ParseToken decodes a string produced by Token.
func ParseToken(tok string) (Schedule, error) {
	parts := strings.Split(strings.TrimSpace(tok), ":")
	if len(parts) != 4 || parts[0] != tokenPrefix {
		return Schedule{}, fmt.Errorf("chaos: malformed token %q (want %s:<seed>:<jitter>:<choices>)", tok, tokenPrefix)
	}
	seed, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return Schedule{}, fmt.Errorf("chaos: token seed %q: %w", parts[1], err)
	}
	jitter, err := time.ParseDuration(parts[2])
	if err != nil {
		return Schedule{}, fmt.Errorf("chaos: token jitter %q: %w", parts[2], err)
	}
	s := Schedule{Seed: seed, Jitter: jitter}
	if parts[3] != "-" && parts[3] != "" {
		for _, f := range strings.Split(parts[3], ".") {
			c, err := strconv.Atoi(f)
			if err != nil || c < 0 {
				return Schedule{}, fmt.Errorf("chaos: token choice %q: not a non-negative integer", f)
			}
			s.Choices = append(s.Choices, c)
		}
	}
	return s, nil
}
