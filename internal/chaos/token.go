package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Schedule names one deterministic execution: the scheduler seed, the event
// jitter bound, and the arbiter choice sequence resolving same-instant ties.
// Everything else a run does follows from these three values (plus the
// fault plan, which the harness owns), so a Schedule doubles as a replay
// token.
type Schedule struct {
	Seed   int64
	Jitter time.Duration
	// Choices are arbiter decisions in probe order: Choices[i] is the index
	// (into FIFO order) of the event fired at the i-th contended instant.
	// Past the end of the slice the arbiter defaults to FIFO (index 0), so
	// a short prefix names a full execution.
	Choices []int
}

// tokenPrefix versions the wire format; bump it if Schedule gains fields.
const tokenPrefix = "gia1"

// Token renders the schedule as a compact string, e.g.
// "gia1:42:5ms:0.2.1". The empty choice sequence renders as "-".
//
// Token is canonical: ParseToken(s.Token()) reproduces s exactly, and
// re-rendering any parsed token is a fixpoint (parse→Token→parse yields the
// same string). Consumers that deduplicate replay tokens must key on
// ParseToken(tok).Token(), which collapses accepted non-canonical spellings
// ("+42" seeds, "5000µs" jitters) onto one string per schedule.
func (s Schedule) Token() string {
	var b strings.Builder
	b.WriteString(tokenPrefix)
	b.WriteByte(':')
	b.WriteString(strconv.FormatInt(s.Seed, 10))
	b.WriteByte(':')
	b.WriteString(s.Jitter.String())
	b.WriteByte(':')
	if len(s.Choices) == 0 {
		b.WriteByte('-')
	} else {
		for i, c := range s.Choices {
			if i > 0 {
				b.WriteByte('.')
			}
			b.WriteString(strconv.Itoa(c))
		}
	}
	return b.String()
}

func (s Schedule) String() string { return s.Token() }

// clone returns a deep copy (Choices is the only reference field).
func (s Schedule) clone() Schedule {
	s.Choices = append([]int(nil), s.Choices...)
	return s
}

// ParseToken decodes a string produced by Token. Accepted non-canonical
// spellings of the numeric fields (an explicit "+" sign, leading zeros,
// non-normalized duration units) are canonicalized: the returned schedule
// renders via Token as the one canonical string for that execution. The
// empty choices segment is rejected — "no choices" is spelled "-" — and a
// negative jitter never names a real execution, so it is rejected too.
func ParseToken(tok string) (Schedule, error) {
	parts := strings.Split(strings.TrimSpace(tok), ":")
	if len(parts) != 4 || parts[0] != tokenPrefix {
		return Schedule{}, fmt.Errorf("chaos: malformed token %q (want %s:<seed>:<jitter>:<choices>)", tok, tokenPrefix)
	}
	seed, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return Schedule{}, fmt.Errorf("chaos: token seed %q: %w", parts[1], err)
	}
	jitter, err := time.ParseDuration(parts[2])
	if err != nil {
		return Schedule{}, fmt.Errorf("chaos: token jitter %q: %w", parts[2], err)
	}
	if jitter < 0 {
		return Schedule{}, fmt.Errorf("chaos: token jitter %q: negative", parts[2])
	}
	s := Schedule{Seed: seed, Jitter: jitter}
	switch parts[3] {
	case "-": // canonical empty choice sequence
	case "":
		return Schedule{}, fmt.Errorf("chaos: token %q: empty choices segment (no choices is spelled %q)", tok, "-")
	default:
		for _, f := range strings.Split(parts[3], ".") {
			c, err := strconv.Atoi(f)
			if err != nil || c < 0 {
				return Schedule{}, fmt.Errorf("chaos: token choice %q: not a non-negative integer", f)
			}
			s.Choices = append(s.Choices, c)
		}
	}
	return s, nil
}
