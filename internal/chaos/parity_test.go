package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/ghost-installer/gia/internal/obs"
	"github.com/ghost-installer/gia/internal/sim"
)

// traceSweep runs a fixed seed × jitter sweep with full instrumentation
// and renders the Chrome trace, the JSONL stream and the metrics snapshot.
func traceSweep(t *testing.T, workers int) (chrome, jsonl, metrics []byte) {
	t.Helper()
	reg := obs.NewRegistry()
	tr := obs.NewTrace()
	// Wall-clock telemetry is schedule-dependent by nature; a trace meant
	// to be byte-identical across worker counts runs virtual-only.
	tr.SetWallClock(nil)
	ex := &Explorer{Workers: workers, Metrics: reg, Trace: tr}

	fn := func(r *Run) error {
		s := sim.New(r.Seed())
		r.Attach(s)
		s.Instrument(sim.Metrics{
			Scheduled:  reg.Counter("sim.scheduled"),
			Dispatched: reg.Counter("sim.dispatched"),
			Track:      r.Track(),
		})
		// A small deterministic world: a chain of events whose spacing
		// depends on the seed, plus an explicit outcome instant.
		for i := 0; i < 4; i++ {
			d := time.Duration(1+s.Int63n(5)) * time.Millisecond
			s.After(d*time.Duration(i+1), func() {})
		}
		s.Run()
		if r.Seed()%3 == 0 {
			r.Track().Instant("verdict", "violation")
			return errors.New("synthetic violation")
		}
		r.Track().Instant("verdict", "held")
		return nil
	}

	seeds := make([]int64, 6)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	res := ex.Sweep(seeds, []time.Duration{0, time.Millisecond}, fn)
	if res.Explored != 12 {
		t.Fatalf("explored = %d, want 12", res.Explored)
	}

	var cb, jb, mb bytes.Buffer
	if err := tr.WriteChrome(&cb); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	if err := reg.Snapshot().WriteText(&mb); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), jb.Bytes(), mb.Bytes()
}

// TestTraceParityAcrossWorkers is the verify.sh determinism gate: for a
// fixed seed grid, the Chrome trace, the JSONL export and the metrics
// snapshot are byte-identical at 1 worker and at NumCPU workers.
func TestTraceParityAcrossWorkers(t *testing.T) {
	c1, j1, m1 := traceSweep(t, 1)
	cn, jn, mn := traceSweep(t, runtime.NumCPU())
	if !bytes.Equal(c1, cn) {
		t.Errorf("Chrome trace differs between 1 and %d workers:\n--- 1 ---\n%s\n--- N ---\n%s",
			runtime.NumCPU(), c1, cn)
	}
	if !bytes.Equal(j1, jn) {
		t.Errorf("JSONL export differs between 1 and %d workers", runtime.NumCPU())
	}
	if !bytes.Equal(m1, mn) {
		t.Errorf("metrics snapshot differs between 1 and %d workers:\n--- 1 ---\n%s\n--- N ---\n%s",
			runtime.NumCPU(), m1, mn)
	}
	if len(c1) == 0 || len(j1) == 0 || len(m1) == 0 {
		t.Fatal("parity gate compared empty exports")
	}
}

// TestExplorerCounters pins the registry counters against the Result the
// explorer itself reports.
func TestExplorerCounters(t *testing.T) {
	reg := obs.NewRegistry()
	ex := &Explorer{Workers: 2, Metrics: reg}
	fn := func(r *Run) error {
		if r.Seed()%2 == 0 {
			return fmt.Errorf("even seed violates")
		}
		return nil
	}
	res := ex.Sweep([]int64{1, 2, 3, 4, 5}, nil, fn)
	snap := reg.Snapshot()
	if got := snap.Counter("chaos.explored"); got != int64(res.Explored) {
		t.Errorf("chaos.explored = %d, Result.Explored = %d", got, res.Explored)
	}
	if got := snap.Counter("chaos.violations"); got != int64(res.Violations) {
		t.Errorf("chaos.violations = %d, Result.Violations = %d", got, res.Violations)
	}
	if res.Violations != 2 {
		t.Errorf("violations = %d, want 2", res.Violations)
	}
}
