// Package chaos is the schedule-exploration and fault-injection harness for
// the AIT simulator. It has two halves:
//
//   - FaultPlan: a declarative list of faults (I/O errors, delayed or
//     duplicated events, truncated downloads, dropped Intents) injected
//     deterministically at chosen virtual times through the fault.Injector
//     hooks threaded through sim, vfs, dm, fuse and intents.
//
//   - Explorer: a bounded-worker schedule explorer that enumerates every
//     permutation of same-instant event orderings (via the scheduler's
//     Arbiter hook) or sweeps a seed × jitter grid, checks a user-supplied
//     invariant over every explored schedule, and minimises the first
//     violating schedule to a compact replay token.
//
// Both halves are deterministic: the same Schedule (seed, jitter, choice
// sequence) and the same FaultPlan always reproduce the same execution,
// which is what makes a violation token worth printing.
package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"github.com/ghost-installer/gia/internal/fault"
)

// Rule describes one fault: where it fires, when, how often, and what it
// does. The zero Match matches every subject at the site.
type Rule struct {
	// Site selects the injection point (see the fault package constants).
	Site fault.Site
	// Match narrows the rule to subjects containing this substring: a path
	// for vfs/dm/fuse sites, "sender->pkg/component" for intent delivery,
	// "action->pkg" for broadcasts. Empty matches everything.
	Match string
	// After suppresses the rule before this virtual time.
	After time.Duration
	// Before suppresses the rule at or beyond this virtual time (zero
	// means no upper bound).
	Before time.Duration
	// Skip lets the first N matching probes pass before the rule arms.
	// "Fail the third chunk write" is Skip: 2.
	Skip int
	// Count caps how many times the rule fires (zero means unlimited).
	Count int

	// Kind is the injected fault kind. KindDelay and KindDuplicate read
	// Delay (or draw from [0, MaxJitter] when MaxJitter is set); KindError
	// reads Err.
	Kind  fault.Kind
	Err   error
	Delay time.Duration
	// MaxJitter, when nonzero, replaces Delay with a uniform draw from
	// [0, MaxJitter] on the plan's own seeded source — the knob the
	// Explorer's jitter sweeps turn.
	MaxJitter time.Duration
	// SnapTo, when nonzero on a KindDelay rule at fault.SiteSimEvent,
	// replaces Delay with whatever shift rounds the event's deadline up to
	// the next SnapTo boundary. Quantizing deadlines forces otherwise
	//-nearby events onto the same instant — the contention the Explorer's
	// ordering enumeration needs to have something to permute.
	SnapTo time.Duration
}

// Hit records one fault actually injected during a run.
type Hit struct {
	Site    fault.Site
	Subject string
	At      time.Duration
	Kind    fault.Kind
}

func (h Hit) String() string {
	return fmt.Sprintf("%s %s@%v %q", h.Kind, h.Site, h.At, h.Subject)
}

// FaultPlan evaluates rules in order and injects the first that matches.
// A plan carries per-rule counters and a seeded random source, so it is
// single-use: hand each run its own Clone. Plans are not safe for
// concurrent probing — the simulator model is single-threaded.
type FaultPlan struct {
	rules   []Rule
	skipped []int
	fired   []int
	seed    int64
	rng     *rand.Rand // seeded lazily: most plans never draw jitter
	hits    []Hit
}

// NewFaultPlan builds a plan from rules, seeded with seed (only used when a
// rule draws jitter).
func NewFaultPlan(seed int64, rules ...Rule) *FaultPlan {
	return &FaultPlan{
		rules:   rules,
		skipped: make([]int, len(rules)),
		fired:   make([]int, len(rules)),
		seed:    seed,
	}
}

// Jitter returns a plan that delays every scheduled event by a uniform draw
// from [0, max] — the perturbation the Explorer sweeps to shake out timing
// assumptions. A zero max yields an empty (but valid) plan.
func Jitter(seed int64, max time.Duration) *FaultPlan {
	if max <= 0 {
		return NewFaultPlan(seed)
	}
	return NewFaultPlan(seed, Rule{
		Site: fault.SiteSimEvent, Kind: fault.KindDelay, MaxJitter: max,
	})
}

// Quantize returns a plan that rounds every event deadline in [after,
// before) up to a multiple of grid, forcing nearby events onto shared
// instants so the Explorer's ordering enumeration has ties to permute.
func Quantize(grid time.Duration, after, before time.Duration) *FaultPlan {
	return NewFaultPlan(0, Rule{
		Site: fault.SiteSimEvent, Kind: fault.KindDelay,
		SnapTo: grid, After: after, Before: before,
	})
}

// Clone returns a fresh plan with the same rules, zeroed counters, an empty
// hit log and a source re-seeded with seed. Each explored schedule gets its
// own clone so runs never share mutable state.
func (p *FaultPlan) Clone(seed int64) *FaultPlan {
	if p == nil {
		return NewFaultPlan(seed)
	}
	return NewFaultPlan(seed, p.rules...)
}

// Extend returns a new plan holding p's rules plus more, preserving p's
// evaluation order. The receiver is unchanged.
func (p *FaultPlan) Extend(seed int64, more ...Rule) *FaultPlan {
	var rules []Rule
	if p != nil {
		rules = append(rules, p.rules...)
	}
	rules = append(rules, more...)
	return NewFaultPlan(seed, rules...)
}

// Rules returns a copy of the plan's rule list.
func (p *FaultPlan) Rules() []Rule {
	if p == nil {
		return nil
	}
	return append([]Rule(nil), p.rules...)
}

// Hits returns the faults injected so far, in probe order.
func (p *FaultPlan) Hits() []Hit {
	if p == nil {
		return nil
	}
	return append([]Hit(nil), p.hits...)
}

var _ fault.Injector = (*FaultPlan)(nil)
var _ fault.Arming = (*FaultPlan)(nil)

// Armed implements fault.Arming: whether any rule targets site. The check
// is static over the rule list — it ignores time windows and fire counters
// — so a false answer holds for the plan's whole life, which is what lets
// a component prove an operation's injected-failure paths unreachable.
func (p *FaultPlan) Armed(site fault.Site) bool {
	if p == nil {
		return false
	}
	for i := range p.rules {
		if p.rules[i].Site == site && p.rules[i].Kind != fault.KindNone {
			return true
		}
	}
	return false
}

// Probe implements fault.Injector: the first matching, armed rule fires.
func (p *FaultPlan) Probe(site fault.Site, subject string, now time.Duration) fault.Action {
	if p == nil {
		return fault.None
	}
	for i := range p.rules {
		r := &p.rules[i]
		if r.Site != site || r.Kind == fault.KindNone {
			continue
		}
		if r.Match != "" && !strings.Contains(subject, r.Match) {
			continue
		}
		if now < r.After || (r.Before > 0 && now >= r.Before) {
			continue
		}
		if p.skipped[i] < r.Skip {
			p.skipped[i]++
			continue
		}
		if r.Count > 0 && p.fired[i] >= r.Count {
			continue
		}
		p.fired[i]++
		act := fault.Action{Kind: r.Kind, Err: r.Err, Delay: r.Delay}
		if r.MaxJitter > 0 {
			if p.rng == nil {
				// First jitter draw of the plan's life: seeding here rather
				// than in NewFaultPlan keeps jitter-free plans (the common
				// case) from paying math/rand's full state initialization.
				p.rng = rand.New(rand.NewSource(p.seed))
			}
			act.Delay = time.Duration(p.rng.Int63n(int64(r.MaxJitter) + 1))
		}
		if r.SnapTo > 0 {
			act.Delay = (r.SnapTo - now%r.SnapTo) % r.SnapTo
		}
		if act.Kind == fault.KindError && act.Err == nil {
			act.Err = fault.ErrInjected
		}
		p.hits = append(p.hits, Hit{Site: site, Subject: subject, At: now, Kind: r.Kind})
		return act
	}
	return fault.None
}
