package chaos

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Violation is one schedule on which the invariant did not hold.
type Violation struct {
	Schedule Schedule // fully resolved (replayable) schedule
	Err      error    // what the RunFunc reported
}

// Result summarises an exploration or sweep.
type Result struct {
	// Explored counts schedules actually executed.
	Explored int
	// Violations counts schedules on which the invariant failed.
	Violations int
	// First is the canonical violation — the one with the smallest
	// schedule (shortest trimmed choice sequence, then lexicographically,
	// then by grid order for sweeps) — or nil if the invariant held
	// everywhere. It is deterministic regardless of worker count.
	First *Violation
	// Truncated reports that MaxSchedules stopped the exploration before
	// the choice tree (or grid) was exhausted.
	Truncated bool
	// MaxBranch is the widest same-instant tie observed (diagnostics: the
	// factorial blow-up knob).
	MaxBranch int
}

// Explorer enumerates schedules and checks an invariant over each. The zero
// value is ready to use.
type Explorer struct {
	// Workers bounds the worker pool; <= 0 means runtime.NumCPU. Each
	// worker runs complete schedules, so RunFuncs must be self-contained
	// (no shared mutable state between runs).
	Workers int
	// MaxSchedules caps how many schedules a call may execute; <= 0 means
	// no cap. Exhaustive exploration of an N-wide tie costs N! runs.
	MaxSchedules int
	// Plan, when non-nil, is the base fault plan cloned into every run.
	Plan *FaultPlan
}

func (e *Explorer) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.NumCPU()
}

// Check executes fn once under schedule s and reports the invariant's
// verdict plus the fully resolved schedule (the replay token).
func (e *Explorer) Check(s Schedule, fn RunFunc) (Schedule, error) {
	r := newRun(s.clone(), e.Plan)
	err := runGuarded(r, fn)
	return r.Schedule(), err
}

// Replay decodes a token and re-executes its schedule, returning the
// invariant error the schedule reproduces (nil if it no longer violates).
func (e *Explorer) Replay(token string, fn RunFunc) (Schedule, error) {
	s, err := ParseToken(token)
	if err != nil {
		return Schedule{}, err
	}
	return e.Check(s, fn)
}

// runGuarded converts a RunFunc panic into a violation error, so one broken
// schedule fails that schedule instead of the whole exploration.
func runGuarded(r *Run, fn RunFunc) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("chaos: run panicked: %v", p)
		}
	}()
	return fn(r)
}

// ExploreOrders exhaustively enumerates same-instant event orderings
// reachable from base (normally Schedule{Seed: s}): a depth-first walk of
// the arbiter's choice tree. Every execution is identified by its choice
// sequence; a run explored with prefix P spawns sibling prefixes at every
// contended instant after P, which visits each distinct ordering exactly
// once. For one instant with N tied events this is exactly the N!
// permutations.
func (e *Explorer) ExploreOrders(base Schedule, fn RunFunc) *Result {
	res := &Result{}
	frontier := []Schedule{base.clone()}

	var (
		mu       sync.Mutex
		inflight int
		wg       sync.WaitGroup
	)
	cond := sync.NewCond(&mu)
	cap := e.MaxSchedules

	worker := func() {
		defer wg.Done()
		for {
			mu.Lock()
			for len(frontier) == 0 && inflight > 0 {
				cond.Wait()
			}
			if len(frontier) == 0 {
				mu.Unlock()
				return
			}
			if cap > 0 && res.Explored >= cap {
				res.Truncated = res.Truncated || len(frontier) > 0
				frontier = nil
				cond.Broadcast()
				mu.Unlock()
				return
			}
			s := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			inflight++
			res.Explored++
			mu.Unlock()

			r := newRun(s, e.Plan)
			err := runGuarded(r, fn)

			mu.Lock()
			// Extend the frontier with every sibling of a default choice
			// taken past the imposed prefix.
			for i := len(s.Choices); i < len(r.arb.branches); i++ {
				if b := r.arb.branches[i]; b > res.MaxBranch {
					res.MaxBranch = b
				}
				for alt := r.arb.choices[i] + 1; alt < r.arb.branches[i]; alt++ {
					sib := s.clone()
					sib.Choices = append(append([]int(nil), r.arb.choices[:i]...), alt)
					frontier = append(frontier, sib)
				}
			}
			if err != nil {
				res.Violations++
				v := &Violation{Schedule: trim(r.Schedule()), Err: err}
				if res.First == nil || lessSchedule(v.Schedule, res.First.Schedule) {
					res.First = v
				}
			}
			inflight--
			cond.Broadcast()
			mu.Unlock()
		}
	}

	n := e.workers()
	wg.Add(n)
	for i := 0; i < n; i++ {
		go worker()
	}
	wg.Wait()
	return res
}

// Sweep checks the invariant over the full seeds × jitters grid (one
// schedule per cell, arbiter left at FIFO), using the bounded worker pool.
// MaxSchedules truncates the grid in row-major order.
func (e *Explorer) Sweep(seeds []int64, jitters []time.Duration, fn RunFunc) *Result {
	if len(jitters) == 0 {
		jitters = []time.Duration{0}
	}
	type cell struct {
		idx int
		s   Schedule
	}
	cells := make([]cell, 0, len(seeds)*len(jitters))
	for _, seed := range seeds {
		for _, j := range jitters {
			cells = append(cells, cell{idx: len(cells), s: Schedule{Seed: seed, Jitter: j}})
		}
	}
	res := &Result{}
	if cap := e.MaxSchedules; cap > 0 && len(cells) > cap {
		cells = cells[:cap]
		res.Truncated = true
	}

	jobs := make(chan cell)
	var mu sync.Mutex
	firstIdx := -1
	var wg sync.WaitGroup
	n := e.workers()
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			for c := range jobs {
				r := newRun(c.s, e.Plan)
				err := runGuarded(r, fn)
				mu.Lock()
				res.Explored++
				if mb := maxBranch(r.arb.branches); mb > res.MaxBranch {
					res.MaxBranch = mb
				}
				if err != nil {
					res.Violations++
					if firstIdx == -1 || c.idx < firstIdx {
						firstIdx = c.idx
						res.First = &Violation{Schedule: trim(r.Schedule()), Err: err}
					}
				}
				mu.Unlock()
			}
		}()
	}
	for _, c := range cells {
		jobs <- c
	}
	close(jobs)
	wg.Wait()
	return res
}

// Minimize shrinks a violating schedule to the smallest one (shortest
// choice prefix, zeroed where possible) that still violates the invariant,
// re-running fn to validate each candidate. The result replays to a
// violation by construction; its token is what a test should print.
func (e *Explorer) Minimize(v Schedule, fn RunFunc) Schedule {
	best := trim(v.clone())
	violates := func(s Schedule) bool {
		_, err := e.Check(s, fn)
		return err != nil
	}
	if !violates(best) {
		return best // not reproducible; nothing to shrink against
	}
	// Shortest violating prefix (the suffix defaults to FIFO).
	for k := 0; k < len(best.Choices); k++ {
		cand := best.clone()
		cand.Choices = cand.Choices[:k]
		if violates(cand) {
			best = trim(cand)
			break
		}
	}
	// Zero out any remaining individual choices.
	for i := range best.Choices {
		if best.Choices[i] == 0 {
			continue
		}
		cand := best.clone()
		cand.Choices[i] = 0
		if violates(cand) {
			best = cand
		}
	}
	return trim(best)
}

// trim drops trailing FIFO (zero) choices — they are the default, so the
// shorter token names the same execution.
func trim(s Schedule) Schedule {
	n := len(s.Choices)
	for n > 0 && s.Choices[n-1] == 0 {
		n--
	}
	s.Choices = s.Choices[:n]
	return s
}

// lessSchedule orders schedules by choice-sequence length, then
// lexicographically, then by seed and jitter — a total order that makes
// Result.First deterministic under concurrency.
func lessSchedule(a, b Schedule) bool {
	if len(a.Choices) != len(b.Choices) {
		return len(a.Choices) < len(b.Choices)
	}
	for i := range a.Choices {
		if a.Choices[i] != b.Choices[i] {
			return a.Choices[i] < b.Choices[i]
		}
	}
	if a.Seed != b.Seed {
		return a.Seed < b.Seed
	}
	return a.Jitter < b.Jitter
}

func maxBranch(bs []int) int {
	m := 0
	for _, b := range bs {
		if b > m {
			m = b
		}
	}
	return m
}
