package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/ghost-installer/gia/internal/obs"
	"github.com/ghost-installer/gia/internal/par"
)

// DefaultDumpDepth bounds how many trailing events a violation dump
// carries per track when Explorer.DumpDepth is unset.
const DefaultDumpDepth = 128

// Violation is one schedule on which the invariant did not hold.
type Violation struct {
	Schedule Schedule // fully resolved (replayable) schedule
	Err      error    // what the RunFunc reported
}

// Result summarises an exploration or sweep.
type Result struct {
	// Explored counts schedules actually executed.
	Explored int
	// Violations counts schedules on which the invariant failed.
	Violations int
	// First is the canonical violation — the one with the smallest
	// schedule (shortest trimmed choice sequence, then lexicographically,
	// then by grid order for sweeps) — or nil if the invariant held
	// everywhere. It is deterministic regardless of worker count.
	First *Violation
	// Truncated reports that MaxSchedules stopped the exploration before
	// the choice tree (or grid) was exhausted.
	Truncated bool
	// MaxBranch is the widest same-instant tie observed (diagnostics: the
	// factorial blow-up knob).
	MaxBranch int
	// PORSkipped counts sibling branches partial-order reduction proved
	// equivalent to an explored ordering and therefore never ran: each is
	// one alternative first-choice at a fully-commuting tie, standing for
	// its whole subtree of orderings. Explored + the subtrees behind
	// PORSkipped together cover the same violation set as an exhaustive
	// walk (pinned by TestExploreOrdersPORSoundness and the verify.sh
	// gate).
	PORSkipped int
}

// Explorer enumerates schedules and checks an invariant over each, fanning
// runs out on the shared par worker pool. The zero value is ready to use.
type Explorer struct {
	// Workers bounds the worker pool; <= 0 means runtime.NumCPU (the
	// par.Workers convention). Each worker runs complete schedules, so
	// RunFuncs must be self-contained (no shared mutable state between
	// runs).
	Workers int
	// MaxSchedules caps how many schedules a call may execute; <= 0 means
	// no cap. Exhaustive exploration of an N-wide tie costs N! runs.
	MaxSchedules int
	// Plan, when non-nil, is the base fault plan cloned into every run.
	Plan *FaultPlan
	// Metrics, when non-nil, receives the counters "chaos.explored" and
	// "chaos.violations" — shared atomics, so their totals are identical
	// for any worker count.
	Metrics *obs.Registry
	// Trace, when non-nil, hands every run a virtual-time track named
	// "run/<token of the imposed schedule>" (reachable via Run.Track and
	// clock-bound at Attach). Track names derive from schedules, never
	// from workers, so virtual-only exports are byte-identical at any
	// worker count.
	Trace *obs.Trace
	// DisablePOR turns partial-order reduction off in ExploreOrders: every
	// sibling ordering is enumerated even when its tie provably commutes.
	// The POR soundness gate uses it to diff reduced against exhaustive
	// exploration; production sweeps leave it false.
	DisablePOR bool
	// DumpDir, when non-empty, turns on flight-recorder dumps: every
	// violating run whose track recorded events gets the last DumpDepth of
	// them written to DumpDir as Chrome-trace JSON and JSONL, tagged with
	// the resolved replay token (in the filename, and as a trailing
	// "chaos.violation" instant carrying token and error). Requires Trace.
	// Dumps are keyed by token, and run tracks are virtual-only, so the
	// dump set is byte-identical at any worker count.
	DumpDir string
	// DumpDepth bounds the events per dumped track; <= 0 means
	// DefaultDumpDepth. With Trace in ring mode the ring depth caps it
	// first.
	DumpDepth int
	// WorkerState, when non-nil, is called lazily — at most once per pool
	// worker over the explorer's lifetime — to build state that worker's
	// runs share across schedules (typically a device arena, so Boot is a
	// one-time cost and each run resets the pooled device in place). Runs
	// read it back via Run.State. Because which schedules land on which
	// worker is timing-dependent, state must never influence a run's
	// *result*, only how cheaply the run rebuilds its world.
	WorkerState func() any

	mu     sync.Mutex
	states []any
	built  []bool
}

// stateFor returns worker k's shared state, building it on first use.
func (e *Explorer) stateFor(k int) any {
	if e.WorkerState == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.states) <= k {
		e.states = append(e.states, nil)
		e.built = append(e.built, false)
	}
	if !e.built[k] {
		e.states[k] = e.WorkerState()
		e.built[k] = true
	}
	return e.states[k]
}

// prepare builds the run for schedule s (already cloned by the caller) on
// pool worker k, giving it its trace lane and the worker's shared state.
func (e *Explorer) prepare(s Schedule, k int) *Run {
	r := newRun(s, e.Plan)
	if e.Trace != nil {
		r.track = e.Trace.VirtualTrack("run/" + s.Token())
	}
	r.state = e.stateFor(k)
	return r
}

// counted bumps the explorer's registry counters for one executed run.
func (e *Explorer) counted(err error) {
	if e.Metrics == nil {
		return
	}
	e.Metrics.Counter("chaos.explored").Add(1)
	if err != nil {
		e.Metrics.Counter("chaos.violations").Add(1)
	}
}

// Check executes fn once under schedule s and reports the invariant's
// verdict plus the fully resolved schedule (the replay token).
func (e *Explorer) Check(s Schedule, fn RunFunc) (Schedule, error) {
	r := e.prepare(s.clone(), 0)
	err := runGuarded(r, fn)
	e.counted(err)
	e.dumpViolation(r, err)
	return r.Schedule(), err
}

// sanitizeToken maps a replay token into a filename-safe form.
func sanitizeToken(token string) string {
	out := []byte(token)
	for i := 0; i < len(out); i++ {
		c := out[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			out[i] = '-'
		}
	}
	return string(out)
}

// dumpViolation writes the flight-recorder dump for a violating run: the
// last DumpDepth events of the run's track, as Chrome-trace JSON and
// JSONL named by the resolved replay token. Best-effort — a failed write
// bumps "chaos.dump_errors" instead of failing the exploration (the
// violation verdict already propagated). No-op unless DumpDir is set, the
// run violated, and the run has a track.
func (e *Explorer) dumpViolation(r *Run, err error) {
	if err == nil || e.DumpDir == "" || r.track == nil {
		return
	}
	token := r.Schedule().Token()
	// The marker instant rides inside the dump (and any later full-trace
	// export): the replay token plus what the invariant reported. The
	// track clock is scheduler-bound, so its timestamp is virtual and
	// deterministic.
	r.track.Instant("chaos.violation", token+": "+err.Error())
	depth := e.DumpDepth
	if depth <= 0 {
		depth = DefaultDumpDepth
	}
	tracks := []*obs.Track{obs.TailTrack(r.track, depth)}
	base := filepath.Join(e.DumpDir, "violation-"+sanitizeToken(token))
	failed := false
	if f, ferr := os.Create(base + ".trace.json"); ferr != nil {
		failed = true
	} else {
		werr := obs.WriteChromeTracks(f, tracks)
		if cerr := f.Close(); werr != nil || cerr != nil {
			failed = true
		}
	}
	if f, ferr := os.Create(base + ".jsonl"); ferr != nil {
		failed = true
	} else {
		werr := obs.WriteJSONLTracks(f, tracks)
		if cerr := f.Close(); werr != nil || cerr != nil {
			failed = true
		}
	}
	if failed {
		e.Metrics.Counter("chaos.dump_errors").Add(1)
	} else {
		e.Metrics.Counter("chaos.dumps").Add(1)
	}
}

// Replay decodes a token and re-executes its schedule, returning the
// invariant error the schedule reproduces (nil if it no longer violates).
func (e *Explorer) Replay(token string, fn RunFunc) (Schedule, error) {
	s, err := ParseToken(token)
	if err != nil {
		return Schedule{}, err
	}
	return e.Check(s, fn)
}

// runGuarded converts a RunFunc panic into a violation error, so one broken
// schedule fails that schedule instead of the whole exploration.
func runGuarded(r *Run, fn RunFunc) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("chaos: run panicked: %v", p)
		}
	}()
	return fn(r)
}

// ExploreOrders enumerates same-instant event orderings reachable from
// base (normally Schedule{Seed: s}): a depth-first walk of the arbiter's
// choice tree. Every execution is identified by its choice sequence; a run
// explored with prefix P spawns sibling prefixes at every contended
// instant after P, which visits each distinct ordering exactly once. For
// one instant with N tied events this is exactly the N! permutations.
//
// Partial-order reduction prunes the walk where it provably cannot matter:
// when every event tied at an instant carries a footprint and all pairs
// are independent (sim.Footprint.Independent), the tie fully commutes.
// Tagged events schedule no same-instant follow-ups (the tagging
// contract), so such a tie consists of exactly its candidates, every
// permutation applies the same set of commuting effects, and all orderings
// reach identical states — the FIFO ordering already explored represents
// them all. Those siblings are counted in Result.PORSkipped instead of
// running. One opaque (untagged) event in a tie disables pruning for that
// instant, so workloads that never tag explore exactly as before.
func (e *Explorer) ExploreOrders(base Schedule, fn RunFunc) *Result {
	res := &Result{}
	var mu sync.Mutex
	maxSchedules := e.MaxSchedules
	por := !e.DisablePOR
	par.FrontierWorker(e.Workers, []Schedule{base.clone()}, func(worker int, s Schedule) []Schedule {
		mu.Lock()
		if maxSchedules > 0 && res.Explored >= maxSchedules {
			// The cap was reached while work remained queued: drop this
			// schedule (and, transitively, its unexplored siblings).
			res.Truncated = true
			mu.Unlock()
			return nil
		}
		res.Explored++
		mu.Unlock()

		r := e.prepare(s, worker)
		r.recordFP = por
		err := runGuarded(r, fn)
		e.counted(err)
		e.dumpViolation(r, err)

		mu.Lock()
		defer mu.Unlock()
		// Extend the frontier with every sibling of a default choice taken
		// past the imposed prefix.
		var sibs []Schedule
		for i := len(s.Choices); i < len(r.arb.branches); i++ {
			b := r.arb.branches[i]
			if b > res.MaxBranch {
				res.MaxBranch = b
			}
			nsibs := b - 1 - r.arb.choices[i]
			if nsibs <= 0 {
				continue
			}
			if por && i < len(r.arb.commuting) && r.arb.commuting[i] {
				res.PORSkipped += nsibs
				continue
			}
			// One backing array for all of this instant's sibling prefixes:
			// nsibs slices of i+1 choices each, copied from the resolved
			// trace once.
			width := i + 1
			buf := make([]int, nsibs*width)
			for alt := r.arb.choices[i] + 1; alt < b; alt++ {
				cs := buf[:width:width]
				buf = buf[width:]
				copy(cs, r.arb.choices[:i])
				cs[i] = alt
				sibs = append(sibs, Schedule{Seed: s.Seed, Jitter: s.Jitter, Choices: cs})
			}
		}
		if err != nil {
			res.Violations++
			v := &Violation{Schedule: trim(r.Schedule()), Err: err}
			if res.First == nil || lessSchedule(v.Schedule, res.First.Schedule) {
				res.First = v
			}
		}
		return sibs
	})
	return res
}

// Sweep checks the invariant over the full seeds × jitters grid (one
// schedule per cell, arbiter left at FIFO), using the shared bounded worker
// pool. MaxSchedules truncates the grid in row-major order; Result.First is
// the violation at the lowest grid index regardless of worker count.
func (e *Explorer) Sweep(seeds []int64, jitters []time.Duration, fn RunFunc) *Result {
	if len(jitters) == 0 {
		jitters = []time.Duration{0}
	}
	cells := make([]Schedule, 0, len(seeds)*len(jitters))
	for _, seed := range seeds {
		for _, j := range jitters {
			cells = append(cells, Schedule{Seed: seed, Jitter: j})
		}
	}
	res := &Result{}
	if cap := e.MaxSchedules; cap > 0 && len(cells) > cap {
		cells = cells[:cap]
		res.Truncated = true
	}

	type cellResult struct {
		sched     Schedule
		maxBranch int
		err       error
	}
	// The RunFunc's verdict is data (a violation), never a pool error, so
	// the map always completes the whole grid.
	outs, _ := par.MapWorker(e.Workers, len(cells), func(worker, i int) (cellResult, error) {
		r := e.prepare(cells[i], worker)
		err := runGuarded(r, fn)
		e.counted(err)
		e.dumpViolation(r, err)
		return cellResult{sched: trim(r.Schedule()), maxBranch: maxBranch(r.arb.branches), err: err}, nil
	})
	for _, o := range outs {
		res.Explored++
		if o.maxBranch > res.MaxBranch {
			res.MaxBranch = o.maxBranch
		}
		if o.err != nil {
			res.Violations++
			if res.First == nil {
				res.First = &Violation{Schedule: o.sched, Err: o.err}
			}
		}
	}
	return res
}

// Minimize shrinks a violating schedule to the smallest one (shortest
// choice prefix, zeroed where possible) that still violates the invariant,
// re-running fn to validate each candidate. The result replays to a
// violation by construction; its token is what a test should print.
func (e *Explorer) Minimize(v Schedule, fn RunFunc) Schedule {
	best := trim(v.clone())
	violates := func(s Schedule) bool {
		_, err := e.Check(s, fn)
		return err != nil
	}
	if !violates(best) {
		return best // not reproducible; nothing to shrink against
	}
	// Shortest violating prefix (the suffix defaults to FIFO).
	for k := 0; k < len(best.Choices); k++ {
		cand := best.clone()
		cand.Choices = cand.Choices[:k]
		if violates(cand) {
			best = trim(cand)
			break
		}
	}
	// Zero out any remaining individual choices.
	for i := range best.Choices {
		if best.Choices[i] == 0 {
			continue
		}
		cand := best.clone()
		cand.Choices[i] = 0
		if violates(cand) {
			best = cand
		}
	}
	return trim(best)
}

// trim drops trailing FIFO (zero) choices — they are the default, so the
// shorter token names the same execution.
func trim(s Schedule) Schedule {
	n := len(s.Choices)
	for n > 0 && s.Choices[n-1] == 0 {
		n--
	}
	s.Choices = s.Choices[:n]
	return s
}

// lessSchedule orders schedules by choice-sequence length, then
// lexicographically, then by seed and jitter — a total order that makes
// Result.First deterministic under concurrency.
func lessSchedule(a, b Schedule) bool {
	if len(a.Choices) != len(b.Choices) {
		return len(a.Choices) < len(b.Choices)
	}
	for i := range a.Choices {
		if a.Choices[i] != b.Choices[i] {
			return a.Choices[i] < b.Choices[i]
		}
	}
	if a.Seed != b.Seed {
		return a.Seed < b.Seed
	}
	return a.Jitter < b.Jitter
}

func maxBranch(bs []int) int {
	m := 0
	for _, b := range bs {
		if b > m {
			m = b
		}
	}
	return m
}
