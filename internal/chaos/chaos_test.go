package chaos

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/ghost-installer/gia/internal/fault"
	"github.com/ghost-installer/gia/internal/sim"
)

// tieWorld schedules n events at the same instant and reports the order in
// which they fired as a string like "abc".
func tieWorld(r *Run, n int) string {
	s := sim.New(r.Seed())
	r.Attach(s)
	var order []byte
	for i := 0; i < n; i++ {
		i := i
		s.At(time.Millisecond, func() { order = append(order, byte('a'+i)) })
	}
	s.Run()
	return string(order)
}

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

// TestExploreOrdersEnumeratesAllPermutations proves the DFS visits every
// one of the N! orderings of an N-wide same-instant tie exactly once, for
// every N the acceptance bar names.
func TestExploreOrdersEnumeratesAllPermutations(t *testing.T) {
	for n := 1; n <= 5; n++ {
		n := n
		t.Run(fmt.Sprintf("N=%d", n), func(t *testing.T) {
			var mu sync.Mutex
			seen := make(map[string]int)
			ex := &Explorer{Workers: 4}
			res := ex.ExploreOrders(Schedule{Seed: 1}, func(r *Run) error {
				order := tieWorld(r, n)
				mu.Lock()
				seen[order]++
				mu.Unlock()
				return nil
			})
			want := factorial(n)
			if res.Explored != want {
				t.Fatalf("explored %d schedules, want %d!=%d", res.Explored, n, want)
			}
			if len(seen) != want {
				t.Fatalf("saw %d distinct orderings, want %d", len(seen), want)
			}
			for order, count := range seen {
				if count != 1 {
					t.Errorf("ordering %q explored %d times, want exactly once", order, count)
				}
			}
			if res.Violations != 0 || res.First != nil {
				t.Errorf("unexpected violations: %+v", res)
			}
			if n > 1 && res.MaxBranch != n {
				t.Errorf("MaxBranch = %d, want %d", res.MaxBranch, n)
			}
		})
	}
}

// TestExploreOrdersSingleWorkerMatches re-runs the N=4 enumeration with one
// worker: same count, same canonical result.
func TestExploreOrdersSingleWorkerMatches(t *testing.T) {
	for _, workers := range []int{1, 8} {
		ex := &Explorer{Workers: workers}
		res := ex.ExploreOrders(Schedule{Seed: 7}, func(r *Run) error {
			if order := tieWorld(r, 4); order[0] == 'd' {
				return fmt.Errorf("d fired first in %q", order)
			}
			return nil
		})
		if res.Explored != 24 {
			t.Fatalf("workers=%d: explored %d, want 24", workers, res.Explored)
		}
		if res.Violations != 6 { // d first, 3! arrangements of the rest
			t.Fatalf("workers=%d: %d violations, want 6", workers, res.Violations)
		}
		if res.First == nil {
			t.Fatal("no First violation")
		}
		// Canonical minimal violating prefix: pick index 3 (event d) at the
		// only contended instant, then FIFO — regardless of worker count.
		if got := res.First.Schedule.Token(); got != "gia1:7:0s:3" {
			t.Errorf("workers=%d: First = %s, want gia1:7:0s:3", workers, got)
		}
	}
}

func TestMaxSchedulesTruncates(t *testing.T) {
	ex := &Explorer{Workers: 1, MaxSchedules: 5}
	res := ex.ExploreOrders(Schedule{Seed: 1}, func(r *Run) error {
		tieWorld(r, 4)
		return nil
	})
	if res.Explored != 5 {
		t.Fatalf("explored %d, want 5", res.Explored)
	}
	if !res.Truncated {
		t.Error("Truncated not set")
	}
}

func TestTokenRoundTrip(t *testing.T) {
	cases := []Schedule{
		{},
		{Seed: 42},
		{Seed: -9, Jitter: 1500 * time.Microsecond},
		{Seed: 7, Jitter: 5 * time.Millisecond, Choices: []int{0, 2, 1, 10}},
	}
	for _, want := range cases {
		got, err := ParseToken(want.Token())
		if err != nil {
			t.Fatalf("ParseToken(%q): %v", want.Token(), err)
		}
		if got.Seed != want.Seed || got.Jitter != want.Jitter || !reflect.DeepEqual(got.Choices, want.Choices) {
			t.Errorf("round trip %q -> %+v, want %+v", want.Token(), got, want)
		}
	}
	for _, bad := range []string{"", "gia1:1:2", "nope:1:0s:-", "gia1:x:0s:-", "gia1:1:xs:-", "gia1:1:0s:1.x", "gia1:1:0s:-1"} {
		if _, err := ParseToken(bad); err == nil {
			t.Errorf("ParseToken(%q) accepted", bad)
		}
	}
}

// traceWorld drives a jittered, fault-injected scheduler and returns the
// exact firing trace, for determinism checks.
func traceWorld(r *Run) string {
	s := sim.New(r.Seed())
	r.Attach(s)
	var trace string
	for i := 0; i < 6; i++ {
		i := i
		s.At(time.Duration(i%3)*time.Millisecond, func() {
			trace += fmt.Sprintf("%d@%v;", i, s.Now())
		})
	}
	s.Run()
	return trace
}

// TestReplayIsBitIdentical runs the same schedule (with jitter and a
// duplicate-injecting fault plan) twice and demands identical traces.
func TestReplayIsBitIdentical(t *testing.T) {
	ex := &Explorer{
		Workers: 1,
		Plan: NewFaultPlan(0, Rule{
			Site: fault.SiteSimEvent, Kind: fault.KindDuplicate,
			Delay: 100 * time.Microsecond, Skip: 2, Count: 2,
		}),
	}
	sched := Schedule{Seed: 11, Jitter: 700 * time.Microsecond, Choices: []int{1}}
	var traces []string
	for i := 0; i < 3; i++ {
		_, err := ex.Check(sched, func(r *Run) error {
			traces = append(traces, traceWorld(r))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if traces[0] != traces[1] || traces[1] != traces[2] {
		t.Fatalf("replays diverged:\n%s\n%s\n%s", traces[0], traces[1], traces[2])
	}
	if traces[0] == "" {
		t.Fatal("empty trace")
	}
}

// TestReplayToken checks that a token string round-trips through Replay.
func TestReplayToken(t *testing.T) {
	ex := &Explorer{Workers: 1}
	boom := errors.New("boom")
	s, err := ex.Replay("gia1:3:0s:1", func(r *Run) error {
		if order := tieWorld(r, 2); order != "ba" {
			return nil
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("replayed schedule did not reproduce: err=%v", err)
	}
	if s.Token() != "gia1:3:0s:1" {
		t.Errorf("resolved token = %s", s.Token())
	}
}

// TestMinimize plants a violation that needs only the last of three imposed
// choices and checks the shrink finds the one-choice token.
func TestMinimize(t *testing.T) {
	ex := &Explorer{Workers: 1}
	// Two consecutive contended instants of width 2; the invariant breaks
	// iff the second instant fires out of FIFO order.
	fn := func(r *Run) error {
		s := sim.New(r.Seed())
		r.Attach(s)
		var second string
		mk := func(at time.Duration, id string, rec *string) {
			s.At(at, func() { *rec += id })
		}
		var first string
		mk(time.Millisecond, "a", &first)
		mk(time.Millisecond, "b", &first)
		mk(2*time.Millisecond, "c", &second)
		mk(2*time.Millisecond, "d", &second)
		s.Run()
		if second == "dc" {
			return errors.New("second instant inverted")
		}
		return nil
	}
	victim := Schedule{Seed: 5, Choices: []int{1, 1}}
	if _, err := ex.Check(victim, fn); err == nil {
		t.Fatal("victim schedule does not violate; test is vacuous")
	}
	min := ex.Minimize(victim, fn)
	if got, want := min.Token(), "gia1:5:0s:0.1"; got != want {
		t.Errorf("minimized to %s, want %s", got, want)
	}
	if _, err := ex.Check(min, fn); err == nil {
		t.Error("minimized schedule no longer violates")
	}
}

// TestSweepDeterministicFirst checks grid sweeps report the row-major first
// violation regardless of worker count, and that clones isolate fault state.
func TestSweepDeterministicFirst(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	jitters := []time.Duration{0, time.Millisecond}
	fn := func(r *Run) error {
		s := sim.New(r.Seed())
		r.Attach(s)
		fired := false
		s.At(time.Millisecond, func() { fired = true })
		s.Run()
		if !fired {
			return errors.New("event dropped")
		}
		return nil
	}
	plan := NewFaultPlan(0, Rule{Site: fault.SiteSimEvent, Kind: fault.KindDrop, Count: 1})
	var first string
	for _, workers := range []int{1, 4} {
		ex := &Explorer{Workers: workers, Plan: plan}
		res := ex.Sweep(seeds, jitters, fn)
		if res.Explored != len(seeds)*len(jitters) {
			t.Fatalf("explored %d, want %d", res.Explored, len(seeds)*len(jitters))
		}
		// The drop rule clones per run, so it fires in every cell.
		if res.Violations != res.Explored {
			t.Fatalf("violations %d, want %d (plan state leaked between runs?)", res.Violations, res.Explored)
		}
		if res.First == nil {
			t.Fatal("no First")
		}
		tok := res.First.Schedule.Token()
		if first == "" {
			first = tok
		} else if tok != first {
			t.Errorf("workers=%d: First %s != %s", workers, tok, first)
		}
	}
	if want := (Schedule{Seed: 1}).Token(); first != want {
		t.Errorf("First = %s, want row-major first cell %s", first, want)
	}
}

// TestFaultPlanWindows exercises Match/After/Before/Skip/Count arithmetic.
func TestFaultPlanWindows(t *testing.T) {
	p := NewFaultPlan(1,
		Rule{Site: fault.SiteVFSWrite, Match: "/sdcard/", After: 10, Before: 20, Skip: 1, Count: 2, Kind: fault.KindError},
	)
	probe := func(subject string, now time.Duration) fault.Kind {
		return p.Probe(fault.SiteVFSWrite, subject, now).Kind
	}
	if got := probe("/data/x", 15); got != fault.KindNone {
		t.Errorf("wrong subject fired: %v", got)
	}
	if got := probe("/sdcard/x", 5); got != fault.KindNone {
		t.Errorf("before window fired: %v", got)
	}
	if got := probe("/sdcard/x", 25); got != fault.KindNone {
		t.Errorf("after window fired: %v", got)
	}
	if got := probe("/sdcard/x", 15); got != fault.KindNone {
		t.Errorf("skip not honoured: %v", got)
	}
	if got := probe("/sdcard/x", 15); got != fault.KindError {
		t.Errorf("first armed probe: %v, want error", got)
	}
	if got := p.Probe(fault.SiteVFSWrite, "/sdcard/x", 15); !errors.Is(got.Err, fault.ErrInjected) {
		t.Errorf("default error = %v, want ErrInjected", got.Err)
	}
	if got := probe("/sdcard/x", 15); got != fault.KindNone {
		t.Errorf("count not honoured: %v", got)
	}
	hits := p.Hits()
	if len(hits) != 2 {
		t.Fatalf("%d hits, want 2", len(hits))
	}
	if hits[0].Subject != "/sdcard/x" || hits[0].At != 15 || hits[0].Kind != fault.KindError {
		t.Errorf("hit[0] = %+v", hits[0])
	}
}
