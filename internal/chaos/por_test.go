package chaos

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/ghost-installer/gia/internal/sim"
)

// porWorld builds the synthetic multi-download shape the POR gates run on:
// n writer events tied at 1ms, each tagged by tag(i), plus an opaque pair
// at 2ms whose inversion breaks the invariant. The writers' effects are a
// per-writer flag — genuinely commuting — so every ordering of the first
// tie reaches the same verdict, and only the opaque second tie decides it.
func porWorld(n int, tag func(i int) sim.Footprint, check sim.FootprintCheck) RunFunc {
	return func(r *Run) error {
		s := sim.New(r.Seed())
		r.Attach(s)
		if check != nil {
			s.SetFootprintCheck(check)
		}
		fired := make([]bool, n)
		for i := 0; i < n; i++ {
			i := i
			s.AtFnTagged(time.Millisecond, tag(i), func() { fired[i] = true })
		}
		var second string
		s.At(2*time.Millisecond, func() { second += "a" })
		s.At(2*time.Millisecond, func() { second += "b" })
		s.Run()
		for i, ok := range fired {
			if !ok {
				return fmt.Errorf("writer %d dropped", i)
			}
		}
		if second == "ba" {
			return errors.New("second instant inverted")
		}
		return nil
	}
}

// explorePair runs the same world reduced and exhaustive.
func explorePair(seed int64, fn RunFunc) (reduced, exhaustive *Result) {
	red := &Explorer{Workers: 4}
	reduced = red.ExploreOrders(Schedule{Seed: seed}, fn)
	exh := &Explorer{Workers: 4, DisablePOR: true}
	exhaustive = exh.ExploreOrders(Schedule{Seed: seed}, fn)
	return reduced, exhaustive
}

// TestExploreOrdersPORSoundness is the POR soundness gate: partial-order
// reduction may only skip orderings whose verdict an explored ordering
// already decides. Reduced and exhaustive exploration of the same world
// must find the same violations (byte-identical minimized tokens), with
// reduced never exploring more schedules, and pruning must switch off the
// moment any candidate in a tie stops being provably independent.
func TestExploreOrdersPORSoundness(t *testing.T) {
	// Distinct directories and distinct kinds all pairwise commute.
	tags := []sim.Footprint{
		{Kind: sim.FootVFS, Key: "/sdcard/dl-a"},
		{Kind: sim.FootVFS, Key: "/sdcard/dl-b"},
		{Kind: sim.FootIntent, Key: "com.store/Done"},
		{Kind: sim.FootProc, Key: "com.store"},
	}

	t.Run("CommutingTiePruned", func(t *testing.T) {
		const n = 3
		fn := porWorld(n, func(i int) sim.Footprint { return tags[i] }, nil)
		red, exh := explorePair(5, fn)

		// Exhaustive: 3! orderings of the writer tie x 2 of the opaque pair.
		if exh.Explored != 12 || exh.Violations != 6 || exh.PORSkipped != 0 {
			t.Fatalf("exhaustive = %+v, want 12 explored, 6 violations, 0 skipped", exh)
		}
		// Reduced: the writer tie fully commutes, so its sibling subtrees
		// collapse onto the FIFO representative — only the opaque pair
		// branches. The tie drains through widths 3 then 2, so 2+1 first-
		// choice siblings are skipped.
		if red.Explored != 2 || red.Violations != 1 {
			t.Fatalf("reduced = %+v, want 2 explored, 1 violation", red)
		}
		if red.PORSkipped != 3 {
			t.Errorf("PORSkipped = %d, want 3", red.PORSkipped)
		}
		if red.Explored > exh.Explored {
			t.Errorf("reduced explored %d > exhaustive %d", red.Explored, exh.Explored)
		}
		if red.MaxBranch != exh.MaxBranch {
			t.Errorf("MaxBranch: reduced %d, exhaustive %d", red.MaxBranch, exh.MaxBranch)
		}
		// Same violation, byte-identical canonical and minimized tokens.
		if red.First == nil || exh.First == nil {
			t.Fatal("a violation went missing")
		}
		if rt, et := red.First.Schedule.Token(), exh.First.Schedule.Token(); rt != et {
			t.Errorf("First tokens diverge: reduced %s, exhaustive %s", rt, et)
		}
		redMin := (&Explorer{Workers: 1}).Minimize(red.First.Schedule, fn).Token()
		exhMin := (&Explorer{Workers: 1, DisablePOR: true}).Minimize(exh.First.Schedule, fn).Token()
		if redMin != exhMin {
			t.Errorf("minimized tokens diverge: reduced %s, exhaustive %s", redMin, exhMin)
		}
		if _, err := (&Explorer{Workers: 1}).Replay(redMin, fn); err == nil {
			t.Errorf("minimized token %s no longer violates on replay", redMin)
		}
	})

	t.Run("OpaqueCandidateDisablesPruning", func(t *testing.T) {
		// One untagged writer in the tie: the instant must explore exactly
		// as without POR. The violation here hides in the writer ordering
		// itself, so a wrongly pruned sibling would be a missed bug.
		fn := func(r *Run) error {
			s := sim.New(r.Seed())
			r.Attach(s)
			var order string
			s.AtFnTagged(time.Millisecond, tags[0], func() { order += "a" })
			s.At(time.Millisecond, func() { order += "b" })
			s.Run()
			if order == "ba" {
				return errors.New("inverted")
			}
			return nil
		}
		red, exh := explorePair(5, fn)
		if red.PORSkipped != 0 {
			t.Errorf("PORSkipped = %d, want 0 (opaque candidate in the tie)", red.PORSkipped)
		}
		if red.Explored != exh.Explored || red.Violations != exh.Violations {
			t.Errorf("reduced %+v != exhaustive %+v", red, exh)
		}
		if red.First == nil || exh.First == nil ||
			red.First.Schedule.Token() != exh.First.Schedule.Token() {
			t.Errorf("First diverges: %+v vs %+v", red.First, exh.First)
		}
	})

	t.Run("SameResourceConflicts", func(t *testing.T) {
		// Two tagged events on the same directory do not commute; the tie
		// must branch.
		fn := porWorld(2, func(int) sim.Footprint {
			return sim.Footprint{Kind: sim.FootVFS, Key: "/sdcard/dl"}
		}, nil)
		red, exh := explorePair(3, fn)
		if red.PORSkipped != 0 {
			t.Errorf("PORSkipped = %d, want 0 (same-key candidates conflict)", red.PORSkipped)
		}
		if red.Explored != exh.Explored || red.Violations != exh.Violations {
			t.Errorf("reduced %+v != exhaustive %+v", red, exh)
		}
	})

	t.Run("DispatchCheckDemotes", func(t *testing.T) {
		// Two events whose tags claim independence but whose effects
		// actually conflict — the lying-tag case the dispatch-time
		// FootprintCheck exists for. With no check installed the reduction
		// trusts the tags and misses the inversion; a check that withdraws
		// the claim restores exhaustive exploration and finds it.
		lying := func(check sim.FootprintCheck) RunFunc {
			return func(r *Run) error {
				s := sim.New(r.Seed())
				r.Attach(s)
				if check != nil {
					s.SetFootprintCheck(check)
				}
				var order string
				s.AtFnTagged(time.Millisecond, tags[0], func() { order += "a" })
				s.AtFnTagged(time.Millisecond, tags[1], func() { order += "b" })
				s.Run()
				if order == "ba" {
					return errors.New("inverted")
				}
				return nil
			}
		}
		ex := &Explorer{Workers: 1}
		unchecked := ex.ExploreOrders(Schedule{Seed: 1}, lying(nil))
		if unchecked.Explored != 1 || unchecked.PORSkipped != 1 || unchecked.Violations != 0 {
			t.Fatalf("unchecked lying tags = %+v, want the sibling pruned (that is the hazard)", unchecked)
		}
		demoted := ex.ExploreOrders(Schedule{Seed: 1}, lying(func(sim.Footprint) bool { return false }))
		if demoted.PORSkipped != 0 || demoted.Explored != 2 || demoted.Violations != 1 {
			t.Errorf("demoted = %+v, want full exploration finding the violation", demoted)
		}
	})
}

// TestFrontierStealDeterministicResult pins the work-stealing frontier's
// contract: the explorer's entire Result — counts, canonical First token,
// branching stats — is identical at 1 worker and at NumCPU workers, even
// though stealing reorders which worker runs which schedule. Run under
// -race this is also the data-race gate for the stealing deques.
func TestFrontierStealDeterministicResult(t *testing.T) {
	run := func(workers int) *Result {
		ex := &Explorer{Workers: workers}
		return ex.ExploreOrders(Schedule{Seed: 9}, func(r *Run) error {
			if order := tieWorld(r, 5); order[0] == 'c' {
				return fmt.Errorf("c fired first in %q", order)
			}
			return nil
		})
	}
	serial := run(1)
	stolen := run(runtime.NumCPU())
	if serial.Explored != 120 || serial.Violations != 24 {
		t.Fatalf("serial baseline = %+v, want 120 explored, 24 violations", serial)
	}
	if stolen.Explored != serial.Explored ||
		stolen.Violations != serial.Violations ||
		stolen.MaxBranch != serial.MaxBranch ||
		stolen.PORSkipped != serial.PORSkipped ||
		stolen.Truncated != serial.Truncated {
		t.Errorf("results diverge:\n 1 worker: %+v\n%d workers: %+v", serial, runtime.NumCPU(), stolen)
	}
	if serial.First == nil || stolen.First == nil {
		t.Fatal("missing First violation")
	}
	if st, wt := serial.First.Schedule.Token(), stolen.First.Schedule.Token(); st != wt {
		t.Errorf("First token: 1 worker %s, %d workers %s", st, runtime.NumCPU(), wt)
	}
	if got, want := serial.First.Schedule.Token(), "gia1:9:0s:2"; got != want {
		t.Errorf("canonical First = %s, want %s", got, want)
	}
}

// TestMaxSchedulesTruncatesUnderStealing re-checks the MaxSchedules cap
// with the stealing frontier saturated: the cap must hold exactly — not
// approximately — no matter how many workers race to claim queued
// schedules, and Truncated must report the dropped remainder.
func TestMaxSchedulesTruncatesUnderStealing(t *testing.T) {
	const cap = 37 // inside the 120-schedule tree, never on a boundary
	ex := &Explorer{Workers: runtime.NumCPU(), MaxSchedules: cap}
	res := ex.ExploreOrders(Schedule{Seed: 1}, func(r *Run) error {
		tieWorld(r, 5)
		return nil
	})
	if res.Explored != cap {
		t.Fatalf("explored %d schedules, want exactly %d", res.Explored, cap)
	}
	if !res.Truncated {
		t.Error("Truncated not set on a capped exploration")
	}
}
