// Package sig models Android's app-signing machinery: developer keys,
// vendor platform keys, certificates and signature blocks.
//
// Signatures are HMAC-SHA256 values under a secret deterministically derived
// from the key's subject name. This keeps the simulation dependency-free and
// reproducible while preserving every property the paper's attacks and
// defenses rely on: signature continuity across updates, platform-key
// signature-level permission grants, and the fact that a repackaged APK
// cannot carry the original developer's signature. No component in this
// repository "forges" a signature by exploiting the derivation; Verify is
// treated as a trusted oracle, exactly like the real crypto.
package sig

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
)

// DigestSize is the size of all digests and fingerprints in bytes.
const DigestSize = sha256.Size

// Digest is a SHA-256 hash value.
type Digest [DigestSize]byte

// Hex returns the digest as a lowercase hex string.
func (d Digest) Hex() string { return hex.EncodeToString(d[:]) }

// Short returns an abbreviated hex form for logs and traces.
func (d Digest) Short() string { return hex.EncodeToString(d[:4]) }

// Sum hashes data.
func Sum(data []byte) Digest { return sha256.Sum256(data) }

// Certificate identifies a signing key. Two keys are "the same signer" iff
// their fingerprints match — this is the identity PackageManagerService
// compares during updates and signature-level permission grants.
type Certificate struct {
	Subject     string `json:"subject"`
	Fingerprint Digest `json:"fingerprint"`
}

// IsZero reports whether the certificate is the zero value (unsigned).
func (c Certificate) IsZero() bool { return c == Certificate{} }

// Equal reports whether two certificates identify the same signer.
func (c Certificate) Equal(o Certificate) bool { return c == o }

func (c Certificate) String() string {
	return fmt.Sprintf("CN=%s/%s", c.Subject, c.Fingerprint.Short())
}

// Key is a signing key. Create keys with NewKey.
type Key struct {
	subject string
	secret  Digest
	cert    Certificate
}

// keyCache memoizes derived keys. The derivation is deterministic and a Key
// is immutable, so a subject's key can be shared freely — Verify re-derives
// the claimed subject's key on every check, which otherwise costs two
// SHA-256 runs per verification. The cap bounds memory against unbounded
// corpus subjects.
var keyCache struct {
	sync.Mutex
	m map[string]*Key
}

const keyCacheCap = 8192

// NewKey derives a key for subject. The derivation is deterministic so
// corpora are reproducible: the same subject always yields the same key.
func NewKey(subject string) *Key {
	keyCache.Lock()
	k := keyCache.m[subject]
	keyCache.Unlock()
	if k != nil {
		return k
	}
	secret := sha256.Sum256([]byte("gia-signing-key:" + subject))
	fp := sha256.Sum256(append([]byte("gia-cert:"), secret[:]...))
	k = &Key{
		subject: subject,
		secret:  secret,
		cert:    Certificate{Subject: subject, Fingerprint: fp},
	}
	keyCache.Lock()
	if keyCache.m == nil {
		keyCache.m = make(map[string]*Key)
	}
	if len(keyCache.m) < keyCacheCap {
		keyCache.m[subject] = k
	}
	keyCache.Unlock()
	return k
}

// Subject returns the key's subject name.
func (k *Key) Subject() string { return k.subject }

// Certificate returns the public certificate for the key.
func (k *Key) Certificate() Certificate { return k.cert }

// Sign produces a signature block over digest.
func (k *Key) Sign(digest Digest) Signature {
	mac := hmac.New(sha256.New, k.secret[:])
	mac.Write(digest[:])
	var value Digest
	copy(value[:], mac.Sum(nil))
	return Signature{Cert: k.cert, Value: value}
}

// Signature is a signature block: the signer's certificate plus the MAC
// value over the signed digest.
type Signature struct {
	Cert  Certificate `json:"cert"`
	Value Digest      `json:"value"`
}

// IsZero reports whether the signature is absent.
func (s Signature) IsZero() bool { return s == Signature{} }

// Verify checks that sig is a valid signature over digest by the key named
// in sig.Cert. It re-derives the subject's key material, which stands in for
// public-key verification.
func Verify(sig Signature, digest Digest) bool {
	if sig.IsZero() {
		return false
	}
	expected := NewKey(sig.Cert.Subject)
	if !expected.Certificate().Equal(sig.Cert) {
		// The certificate does not belong to the claimed subject.
		return false
	}
	want := expected.Sign(digest)
	return hmac.Equal(want.Value[:], sig.Value[:])
}
