package sig

import (
	"testing"
	"testing/quick"
)

func TestKeyDeterminism(t *testing.T) {
	a := NewKey("com.example")
	b := NewKey("com.example")
	if !a.Certificate().Equal(b.Certificate()) {
		t.Error("same subject produced different certificates")
	}
	c := NewKey("com.other")
	if a.Certificate().Equal(c.Certificate()) {
		t.Error("different subjects produced equal certificates")
	}
}

func TestSignAndVerify(t *testing.T) {
	k := NewKey("samsung-platform")
	digest := Sum([]byte("apk contents"))
	s := k.Sign(digest)

	if !Verify(s, digest) {
		t.Error("valid signature failed verification")
	}
	if Verify(s, Sum([]byte("tampered"))) {
		t.Error("signature verified over wrong digest")
	}
}

func TestVerifyRejectsWrongSigner(t *testing.T) {
	digest := Sum([]byte("data"))
	attacker := NewKey("attacker")
	s := attacker.Sign(digest)

	// Claiming to be another subject must fail: the certificate
	// fingerprint will not match the claimed subject's key.
	s.Cert.Subject = "samsung-platform"
	if Verify(s, digest) {
		t.Error("forged certificate subject verified")
	}
}

func TestVerifyRejectsZeroSignature(t *testing.T) {
	if Verify(Signature{}, Sum([]byte("x"))) {
		t.Error("zero signature verified")
	}
}

func TestCertificateHelpers(t *testing.T) {
	k := NewKey("x")
	c := k.Certificate()
	if c.IsZero() {
		t.Error("real certificate reported zero")
	}
	if (Certificate{}).IsZero() != true {
		t.Error("zero certificate not reported zero")
	}
	if c.String() == "" || c.Fingerprint.Hex() == "" || c.Fingerprint.Short() == "" {
		t.Error("string helpers returned empty output")
	}
	if len(c.Fingerprint.Hex()) != DigestSize*2 {
		t.Errorf("hex length = %d", len(c.Fingerprint.Hex()))
	}
}

// Property: a signature verifies iff checked against the digest it signed.
func TestPropertySignVerify(t *testing.T) {
	k := NewKey("dev")
	f := func(a, b []byte) bool {
		da, db := Sum(a), Sum(b)
		s := k.Sign(da)
		if !Verify(s, da) {
			return false
		}
		if da != db && Verify(s, db) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: tampering with the signature value breaks verification.
func TestPropertyTamperedSignatureFails(t *testing.T) {
	k := NewKey("dev")
	f := func(data []byte, bit uint16) bool {
		d := Sum(data)
		s := k.Sign(d)
		idx := int(bit) % DigestSize
		s.Value[idx] ^= 0x01
		return !Verify(s, d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
