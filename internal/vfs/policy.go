package vfs

import "fmt"

// Op identifies the kind of access a Request asks for.
type Op int

// Access operations checked by policies.
const (
	OpRead Op = iota + 1
	OpWrite
	OpCreate
	OpDelete
	OpRename
	OpChmod
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpCreate:
		return "create"
	case OpDelete:
		return "delete"
	case OpRename:
		return "rename"
	case OpChmod:
		return "chmod"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Request describes an access for policy evaluation. Path is the resolved
// logical path; Info is nil for creations; Other is the destination of a
// rename; Dir marks directory creation.
type Request struct {
	Op    Op
	Path  string
	Other string
	Actor UID
	Info  *Info
	Dir   bool
}

// Policy decides whether an access is allowed and can override the mode
// derived for newly created files (the FUSE daemon's
// derive_permissions_locked hook).
type Policy interface {
	// Check returns nil to allow the request.
	Check(fs *FS, req Request) error
	// DeriveMode returns the mode a newly created file at path receives.
	// Implementations return requested to keep the caller's mode.
	DeriveMode(fs *FS, path string, actor UID, requested Mode) Mode
}

// defaultDAC is plain Unix discretionary access control: root and system
// UIDs bypass checks; otherwise the owner needs the owner bits and everyone
// else the "other" bits. (Group semantics are folded into "other" — the
// simulation does not model supplementary groups.)
type defaultDAC struct{}

var _ Policy = defaultDAC{}

func (defaultDAC) Check(fs *FS, req Request) error {
	if req.Actor.IsSystem() {
		return nil
	}
	switch req.Op {
	case OpCreate:
		return nil
	case OpRead:
		if req.Info.Owner == req.Actor {
			if req.Info.Mode&ModeOwnerRead == 0 {
				return fmt.Errorf("%s %q: %w", req.Op, req.Path, ErrPermission)
			}
			return nil
		}
		if req.Info.Mode&ModeOtherRead == 0 {
			return fmt.Errorf("%s %q: %w", req.Op, req.Path, ErrPermission)
		}
		return nil
	case OpWrite, OpDelete, OpRename:
		if req.Info.Owner == req.Actor {
			if req.Info.Mode&ModeOwnerWrite == 0 {
				return fmt.Errorf("%s %q: %w", req.Op, req.Path, ErrPermission)
			}
			return nil
		}
		if req.Info.Mode&ModeOtherWrite == 0 {
			return fmt.Errorf("%s %q: %w", req.Op, req.Path, ErrPermission)
		}
		return nil
	case OpChmod:
		if req.Info.Owner != req.Actor {
			return fmt.Errorf("%s %q: %w", req.Op, req.Path, ErrPermission)
		}
		return nil
	default:
		return fmt.Errorf("%s %q: unknown op: %w", req.Op, req.Path, ErrInvalidPath)
	}
}

func (defaultDAC) DeriveMode(fs *FS, path string, actor UID, requested Mode) Mode {
	return requested
}
