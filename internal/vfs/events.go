package vfs

import (
	"fmt"
	"path"
	"strings"

	"github.com/ghost-installer/gia/internal/fault"
)

// EventKind is an inotify-style filesystem event type.
type EventKind int

// Event kinds. The names mirror the constants Android's FileObserver
// exposes; CLOSE_WRITE vs CLOSE_NOWRITE is the distinction the TOCTOU
// attackers of Section III-B fingerprint verification reads with.
const (
	EvCreate EventKind = 1 << iota
	EvOpen
	EvAccess
	EvModify
	EvCloseWrite
	EvCloseNoWrite
	EvDelete
	EvMovedFrom
	EvMovedTo
	EvAttrib
)

// EvAll matches every event kind.
const EvAll = EvCreate | EvOpen | EvAccess | EvModify | EvCloseWrite |
	EvCloseNoWrite | EvDelete | EvMovedFrom | EvMovedTo | EvAttrib

func (k EventKind) String() string {
	switch k {
	case EvCreate:
		return "CREATE"
	case EvOpen:
		return "OPEN"
	case EvAccess:
		return "ACCESS"
	case EvModify:
		return "MODIFY"
	case EvCloseWrite:
		return "CLOSE_WRITE"
	case EvCloseNoWrite:
		return "CLOSE_NOWRITE"
	case EvDelete:
		return "DELETE"
	case EvMovedFrom:
		return "MOVED_FROM"
	case EvMovedTo:
		return "MOVED_TO"
	case EvAttrib:
		return "ATTRIB"
	default:
		return fmt.Sprintf("EVENT(%d)", int(k))
	}
}

// Event describes one filesystem operation, delivered to watchers of the
// affected file's parent directory (inotify watches directories).
type Event struct {
	Kind  EventKind
	Path  string // full path of the affected file
	Actor UID    // UID that performed the operation
	IsDir bool
}

// Name returns the base name of the affected file.
func (e Event) Name() string { return path.Base(e.Path) }

func (e Event) String() string {
	return fmt.Sprintf("%s %s (uid %d)", e.Kind, e.Path, e.Actor)
}

// Watch is a subscription to events in one directory.
type Watch struct {
	fs     *FS
	dir    string
	mask   EventKind
	fn     func(Event)
	id     int
	closed bool
}

// Watch subscribes fn to events whose kind is in mask for files directly
// inside dir. Events are delivered synchronously, in operation order, at the
// virtual time the operation happens. The directory does not have to exist
// yet (Android's FileObserver behaves the same way for recreated dirs).
func (fs *FS) Watch(dir string, mask EventKind, fn func(Event)) (*Watch, error) {
	clean, err := cleanPath(dir)
	if err != nil {
		return nil, err
	}
	w := &Watch{fs: fs, dir: clean, mask: mask, fn: fn, id: fs.nextWID}
	fs.nextWID++
	fs.watchers[clean] = append(fs.watchers[clean], w)
	return w, nil
}

// Close cancels the subscription.
func (w *Watch) Close() {
	if w.closed {
		return
	}
	w.closed = true
	list := w.fs.watchers[w.dir]
	for i, other := range list {
		if other.id == w.id {
			w.fs.watchers[w.dir] = append(list[:i:i], list[i+1:]...)
			break
		}
	}
}

// Dir reports the watched directory.
func (w *Watch) Dir() string { return w.dir }

// WriteQuiet reports whether writing to (and closing a write handle on) an
// already-open file directly inside dir is provably confined to dir right
// now: no live watcher subscribes to dir (watcher callbacks run
// synchronously and may do anything), no fault rule is armed at the vfs
// write site (an injected error would bounce the writer onto its failure
// path), and no capacity-limited mount covers or sits under dir (a write
// could fail with ErrNoSpace). The chaos explorer's partial-order reduction
// consults it at dispatch time — via the device's sim.FootprintCheck — to
// validate FootVFS footprints; a false verdict makes the event opaque for
// that dispatch instead of risking an unsound prune.
func (fs *FS) WriteQuiet(dir string) bool {
	for _, w := range fs.watchers[dir] {
		if !w.closed {
			return false
		}
	}
	if fault.Armed(fs.injector, fault.SiteVFSWrite) {
		return false
	}
	for i := range fs.mounts {
		m := &fs.mounts[i]
		if m.capacity > 0 && (underPrefix(dir, m.prefix) || underPrefix(m.prefix, dir)) {
			return false
		}
	}
	return true
}

func (fs *FS) emit(ev Event) {
	// Event paths are already clean and absolute, so the containing
	// directory is a substring — path.Dir would re-Clean (and allocate)
	// on every event.
	dir := ev.Path
	if i := strings.LastIndexByte(ev.Path, '/'); i > 0 {
		dir = ev.Path[:i]
	} else {
		dir = "/"
	}
	// Copy the slice: a callback may add or close watches while we
	// iterate. Directories carry a handful of watchers at most, so the
	// copy normally fits a stack buffer instead of allocating per event.
	list := fs.watchers[dir]
	if len(list) == 0 {
		return
	}
	var stack [4]*Watch
	var snapshot []*Watch
	if len(list) <= len(stack) {
		snapshot = stack[:copy(stack[:], list)]
	} else {
		snapshot = make([]*Watch, len(list))
		copy(snapshot, list)
	}
	for _, w := range snapshot {
		if w.closed || w.mask&ev.Kind == 0 {
			continue
		}
		w.fn(ev)
	}
}
