package vfs

import (
	"bytes"
	"testing"
)

// A publisher's buffer adopted via WriteShared must survive any later
// in-place rewrite of the file: Write unshares (copy-on-write) before
// mutating, so the published bytes stay byte-identical.
func TestWriteSharedCopyOnWriteProtectsPublisher(t *testing.T) {
	fs := newFS()
	if err := fs.MkdirAll("/sdcard/Download", 0, ModeShared); err != nil {
		t.Fatal(err)
	}
	published := []byte("published-apk-image-bytes")
	pristine := append([]byte(nil), published...)
	const path = "/sdcard/Download/app.apk"
	if err := fs.WriteFileShared(path, published, 0, ModeShared); err != nil {
		t.Fatal(err)
	}

	// Attacker-style in-place overwrite through a plain write handle (no
	// truncation — the exact path that used to scribble on the alias).
	h, err := fs.Open(path, 0, FlagWrite, ModeShared)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("EVIL")); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(published, pristine) {
		t.Fatalf("publisher's shared buffer mutated by in-place write:\n got %q\nwant %q", published, pristine)
	}
	got, err := fs.ReadFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte("EVIL"), pristine[4:]...)
	if !bytes.Equal(got, want) {
		t.Fatalf("file content after overwrite: got %q want %q", got, want)
	}
}

// Truncation drops the adopted buffer entirely, so a rewrite-from-scratch
// (WriteFile with FlagTrunc) never touches the publisher's bytes either.
func TestWriteSharedTruncateDropsAdoptedBuffer(t *testing.T) {
	fs := newFS()
	if err := fs.MkdirAll("/sdcard/Download", 0, ModeShared); err != nil {
		t.Fatal(err)
	}
	published := []byte("shared-original-content")
	pristine := append([]byte(nil), published...)
	const path = "/sdcard/Download/app.apk"
	if err := fs.WriteFileShared(path, published, 0, ModeShared); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(path, []byte("replacement"), 0, ModeShared); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(published, pristine) {
		t.Fatalf("publisher's shared buffer mutated by truncating rewrite:\n got %q\nwant %q", published, pristine)
	}
	// The replacement file is private again: growing it in place must not
	// alias anything shared.
	h, err := fs.Open(path, 0, FlagWrite|FlagAppend, ModeShared)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("-grown")); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "replacement-grown" {
		t.Fatalf("file content: got %q want %q", got, "replacement-grown")
	}
}
