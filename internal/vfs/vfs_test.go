package vfs

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

const (
	appA UID = 10001
	appB UID = 10002
)

func newFS() *FS { return New(func() time.Duration { return 0 }) }

func mustMkdirAll(t *testing.T, fs *FS, p string, uid UID) {
	t.Helper()
	if err := fs.MkdirAll(p, uid, ModeDir); err != nil {
		t.Fatalf("MkdirAll(%q): %v", p, err)
	}
}

func mustWrite(t *testing.T, fs *FS, p string, data string, uid UID, mode Mode) {
	t.Helper()
	if err := fs.WriteFile(p, []byte(data), uid, mode); err != nil {
		t.Fatalf("WriteFile(%q): %v", p, err)
	}
}

func TestMkdirAndStat(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/sdcard/Download", Root)
	info, err := fs.Stat("/sdcard/Download")
	if err != nil {
		t.Fatal(err)
	}
	if !info.IsDir || info.Name != "Download" || info.Path != "/sdcard/Download" {
		t.Errorf("unexpected info: %+v", info)
	}
}

func TestMkdirErrors(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/a", Root)
	if err := fs.Mkdir("/a", Root, ModeDir); !errors.Is(err, ErrExist) {
		t.Errorf("Mkdir existing = %v, want ErrExist", err)
	}
	if err := fs.Mkdir("/missing/sub", Root, ModeDir); !errors.Is(err, ErrNotExist) {
		t.Errorf("Mkdir under missing = %v, want ErrNotExist", err)
	}
	if err := fs.Mkdir("relative", Root, ModeDir); !errors.Is(err, ErrInvalidPath) {
		t.Errorf("Mkdir relative = %v, want ErrInvalidPath", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/data", Root)
	mustWrite(t, fs, "/data/f.txt", "hello", appA, ModePrivate)
	got, err := fs.ReadFile("/data/f.txt", appA)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("read %q, want hello", got)
	}
	info, _ := fs.Stat("/data/f.txt")
	if info.Size != 5 || info.Owner != appA {
		t.Errorf("info = %+v", info)
	}
}

func TestDACProtectsPrivateFiles(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/data", Root)
	mustWrite(t, fs, "/data/secret", "s", appA, ModePrivate)

	if _, err := fs.ReadFile("/data/secret", appB); !errors.Is(err, ErrPermission) {
		t.Errorf("other app read private file: err = %v, want ErrPermission", err)
	}
	if err := fs.WriteFile("/data/secret", []byte("x"), appB, ModePrivate); !errors.Is(err, ErrPermission) {
		t.Errorf("other app wrote private file: err = %v, want ErrPermission", err)
	}
	// System bypasses DAC.
	if _, err := fs.ReadFile("/data/secret", System); err != nil {
		t.Errorf("system read failed: %v", err)
	}
	// World-readable allows cross-app reads, not writes.
	mustWrite(t, fs, "/data/pub", "p", appA, ModeWorldReadable)
	if _, err := fs.ReadFile("/data/pub", appB); err != nil {
		t.Errorf("world-readable read failed: %v", err)
	}
	if err := fs.WriteFile("/data/pub", []byte("x"), appB, 0); !errors.Is(err, ErrPermission) {
		t.Errorf("world-readable write allowed: err = %v", err)
	}
}

func TestChmodAndChown(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/d", Root)
	mustWrite(t, fs, "/d/f", "x", appA, ModePrivate)

	if err := fs.Chmod("/d/f", ModeWorldReadable, appB); !errors.Is(err, ErrPermission) {
		t.Errorf("non-owner chmod = %v, want ErrPermission", err)
	}
	if err := fs.Chmod("/d/f", ModeWorldReadable, appA); err != nil {
		t.Fatalf("owner chmod: %v", err)
	}
	if _, err := fs.ReadFile("/d/f", appB); err != nil {
		t.Errorf("read after chmod 644: %v", err)
	}
	if err := fs.Chown("/d/f", appB, appA); !errors.Is(err, ErrPermission) {
		t.Errorf("app chown = %v, want ErrPermission", err)
	}
	if err := fs.Chown("/d/f", appB, System); err != nil {
		t.Fatalf("system chown: %v", err)
	}
	info, _ := fs.Stat("/d/f")
	if info.Owner != appB {
		t.Errorf("owner = %d, want %d", info.Owner, appB)
	}
}

func TestRemove(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/d/sub", Root)
	mustWrite(t, fs, "/d/sub/f", "x", appA, ModeShared)

	if err := fs.Remove("/d/sub", Root); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("remove non-empty dir = %v, want ErrNotEmpty", err)
	}
	if err := fs.Remove("/d/sub/f", appA); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/d/sub/f") {
		t.Error("file still exists after Remove")
	}
	if err := fs.Remove("/d/sub", Root); err != nil {
		t.Fatal(err)
	}
	if err := fs.RemoveAll("/d", Root); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/d") {
		t.Error("dir still exists after RemoveAll")
	}
	if err := fs.RemoveAll("/d", Root); err != nil {
		t.Errorf("RemoveAll on missing path = %v, want nil", err)
	}
}

func TestRenameMovesAndOverwrites(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/a", Root)
	mustMkdirAll(t, fs, "/b", Root)
	mustWrite(t, fs, "/a/f", "one", appA, ModeShared)
	mustWrite(t, fs, "/b/g", "two", appA, ModeShared)

	if err := fs.Rename("/a/f", "/b/g", appA); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/a/f") {
		t.Error("source still exists after rename")
	}
	got, err := fs.ReadFile("/b/g", appA)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "one" {
		t.Errorf("dest content = %q, want %q", got, "one")
	}
}

func TestSymlinkResolution(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/sdcard/real", Root)
	mustWrite(t, fs, "/sdcard/real/f", "data", appA, ModeShared)
	if err := fs.Symlink("/sdcard/real", "/sdcard/link", appA); err != nil {
		t.Fatal(err)
	}

	resolved, err := fs.Resolve("/sdcard/link/f")
	if err != nil {
		t.Fatal(err)
	}
	if resolved != "/sdcard/real/f" {
		t.Errorf("Resolve = %q, want /sdcard/real/f", resolved)
	}
	got, err := fs.ReadFile("/sdcard/link/f", appA)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "data" {
		t.Errorf("read through link = %q", got)
	}
	target, err := fs.ReadLink("/sdcard/link")
	if err != nil {
		t.Fatal(err)
	}
	if target != "/sdcard/real" {
		t.Errorf("ReadLink = %q", target)
	}
}

func TestRetargetIsTheTOCTOUPrimitive(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/sdcard/mine", Root)
	mustMkdirAll(t, fs, "/data/private", Root)
	mustWrite(t, fs, "/data/private/db", "secrets", System, ModePrivate)
	if err := fs.Symlink("/sdcard/mine", "/sdcard/dl", appA); err != nil {
		t.Fatal(err)
	}

	// Check time: the path resolves inside the authorized area.
	resolved, err := fs.Resolve("/sdcard/dl")
	if err != nil {
		t.Fatal(err)
	}
	if resolved != "/sdcard/mine" {
		t.Fatalf("Resolve = %q", resolved)
	}

	// Use time: the owner re-points the link.
	if err := fs.Retarget("/sdcard/dl", "/data/private", appA); err != nil {
		t.Fatal(err)
	}
	resolved, err = fs.Resolve("/sdcard/dl/db")
	if err != nil {
		t.Fatal(err)
	}
	if resolved != "/data/private/db" {
		t.Errorf("post-retarget Resolve = %q, want /data/private/db", resolved)
	}

	// Only the owner (or system) may retarget.
	if err := fs.Retarget("/sdcard/dl", "/sdcard/mine", appB); !errors.Is(err, ErrPermission) {
		t.Errorf("non-owner retarget = %v, want ErrPermission", err)
	}
}

func TestSymlinkLoopDetected(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/d", Root)
	if err := fs.Symlink("/d/b", "/d/a", appA); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/d/a", "/d/b", appA); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Resolve("/d/a"); !errors.Is(err, ErrLinkLoop) {
		t.Errorf("Resolve loop = %v, want ErrLinkLoop", err)
	}
}

func TestRelativeSymlinkTarget(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/d/real", Root)
	mustWrite(t, fs, "/d/real/f", "x", appA, ModeShared)
	if err := fs.Symlink("real", "/d/link", appA); err != nil {
		t.Fatal(err)
	}
	resolved, err := fs.Resolve("/d/link/f")
	if err != nil {
		t.Fatal(err)
	}
	if resolved != "/d/real/f" {
		t.Errorf("Resolve = %q", resolved)
	}
}

func TestCapacityEnforced(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/data", Root)
	if err := fs.Mount("/data", nil, 10); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/data/small", make([]byte, 8), appA, ModePrivate); err != nil {
		t.Fatal(err)
	}
	err := fs.WriteFile("/data/big", make([]byte, 8), appA, ModePrivate)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("over-capacity write = %v, want ErrNoSpace", err)
	}
	// Freeing space makes room again.
	if err := fs.Remove("/data/small", appA); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/data/big", make([]byte, 8), appA, ModePrivate); err != nil {
		t.Errorf("write after free: %v", err)
	}
	used, capacity, err := fs.MountUsage("/data")
	if err != nil {
		t.Fatal(err)
	}
	if used != 8 || capacity != 10 {
		t.Errorf("usage = %d/%d, want 8/10", used, capacity)
	}
}

func TestHandleReadWriteSemantics(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/d", Root)
	h, err := fs.Open("/d/f", appA, FlagWrite|FlagCreate, ModeShared)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("chunk1")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("chunk2")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Read(make([]byte, 1)); !errors.Is(err, ErrPermission) {
		t.Errorf("read on write-only handle = %v, want ErrPermission", err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); !errors.Is(err, ErrClosedHandle) {
		t.Errorf("double close = %v, want ErrClosedHandle", err)
	}
	if _, err := h.Write([]byte("x")); !errors.Is(err, ErrClosedHandle) {
		t.Errorf("write after close = %v, want ErrClosedHandle", err)
	}

	got, err := fs.ReadFile("/d/f", appA)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "chunk1chunk2" {
		t.Errorf("content = %q", got)
	}

	tail, err := fs.ReadTail("/d/f", 6, appA)
	if err != nil {
		t.Fatal(err)
	}
	if string(tail) != "chunk2" {
		t.Errorf("tail = %q", tail)
	}
	// Tail longer than the file returns the whole file.
	tail, err = fs.ReadTail("/d/f", 100, appA)
	if err != nil {
		t.Fatal(err)
	}
	if string(tail) != "chunk1chunk2" {
		t.Errorf("long tail = %q", tail)
	}
}

func TestOpenTruncAndAppend(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/d", Root)
	mustWrite(t, fs, "/d/f", "original", appA, ModeShared)

	h, err := fs.Open("/d/f", appA, FlagWrite|FlagAppend, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("+more")); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("/d/f", appA)
	if string(got) != "original+more" {
		t.Errorf("append result = %q", got)
	}

	h, err = fs.Open("/d/f", appA, FlagWrite|FlagTrunc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ = fs.ReadFile("/d/f", appA)
	if len(got) != 0 {
		t.Errorf("trunc left %q", got)
	}
}

func TestCloseWriteVsCloseNoWrite(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/d", Root)
	mustWrite(t, fs, "/d/f", "x", appA, ModeShared)

	var kinds []EventKind
	w, err := fs.Watch("/d", EvCloseWrite|EvCloseNoWrite, func(ev Event) {
		kinds = append(kinds, ev.Kind)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// A pure read closes with CLOSE_NOWRITE.
	if _, err := fs.ReadFile("/d/f", appA); err != nil {
		t.Fatal(err)
	}
	// A write closes with CLOSE_WRITE.
	if err := fs.WriteFile("/d/f", []byte("y"), appA, 0); err != nil {
		t.Fatal(err)
	}
	// A read-write open with no writes closes with CLOSE_NOWRITE.
	h, err := fs.Open("/d/f", appA, FlagRead|FlagWrite, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	want := []EventKind{EvCloseNoWrite, EvCloseWrite, EvCloseNoWrite}
	if len(kinds) != len(want) {
		t.Fatalf("saw %d close events %v, want %d", len(kinds), kinds, len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestWatchEventSequenceForDownload(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/sdcard/store", Root)
	var events []string
	w, err := fs.Watch("/sdcard/store", EvAll, func(ev Event) {
		events = append(events, ev.Kind.String()+" "+ev.Name())
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// Simulate a chunked download followed by a verification read and a
	// replacement move — the full Section III-B event fingerprint.
	h, _ := fs.Open("/sdcard/store/app.apk", appA, FlagWrite|FlagCreate, ModeShared)
	_, _ = h.Write([]byte("part1"))
	_, _ = h.Write([]byte("part2"))
	_ = h.Close()
	_, _ = fs.ReadFile("/sdcard/store/app.apk", appA)
	mustWrite(t, fs, "/sdcard/evil.apk", "evil", appB, ModeShared)
	_ = fs.Rename("/sdcard/evil.apk", "/sdcard/store/app.apk", appB)

	want := []string{
		"CREATE app.apk",
		"OPEN app.apk",
		"MODIFY app.apk",
		"MODIFY app.apk",
		"CLOSE_WRITE app.apk",
		"OPEN app.apk",
		"ACCESS app.apk",
		"CLOSE_NOWRITE app.apk",
		"MOVED_TO app.apk",
	}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %q, want %q", i, events[i], want[i])
		}
	}
}

func TestWatchMaskAndClose(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/d", Root)
	count := 0
	w, err := fs.Watch("/d", EvCreate, func(ev Event) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	mustWrite(t, fs, "/d/a", "x", appA, ModeShared) // CREATE counted, others masked
	if count != 1 {
		t.Fatalf("count = %d after create, want 1", count)
	}
	w.Close()
	w.Close() // idempotent
	mustWrite(t, fs, "/d/b", "x", appA, ModeShared)
	if count != 1 {
		t.Errorf("count = %d after watch closed, want 1", count)
	}
}

func TestWatchOnlyDirectChildren(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/d/sub", Root)
	count := 0
	w, err := fs.Watch("/d", EvAll, func(ev Event) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	mustWrite(t, fs, "/d/sub/deep", "x", appA, ModeShared)
	if count != 0 {
		t.Errorf("watcher saw %d events from a nested dir, want 0", count)
	}
}

func TestWalk(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/a/b", Root)
	mustWrite(t, fs, "/a/f1", "x", appA, ModeShared)
	mustWrite(t, fs, "/a/b/f2", "y", appA, ModeShared)

	var paths []string
	if err := fs.Walk("/a", func(info Info) error {
		paths = append(paths, info.Path)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"/a", "/a/b", "/a/b/f2", "/a/f1"}
	if len(paths) != len(want) {
		t.Fatalf("paths = %v", paths)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Errorf("paths[%d] = %q, want %q", i, paths[i], want[i])
		}
	}
}

func TestList(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/d", Root)
	mustWrite(t, fs, "/d/b", "x", appA, ModeShared)
	mustWrite(t, fs, "/d/a", "x", appA, ModeShared)
	infos, err := fs.List("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Name != "a" || infos[1].Name != "b" {
		t.Errorf("List = %+v", infos)
	}
	if _, err := fs.List("/d/a"); !errors.Is(err, ErrNotDir) {
		t.Errorf("List(file) = %v, want ErrNotDir", err)
	}
}

// Property: WriteFile then ReadFile round-trips arbitrary content.
func TestPropertyWriteReadRoundTrip(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/d", Root)
	f := func(data []byte) bool {
		if err := fs.WriteFile("/d/f", data, appA, ModeShared); err != nil {
			return false
		}
		got, err := fs.ReadFile("/d/f", appA)
		if err != nil {
			return false
		}
		return string(got) == string(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: rename preserves content for arbitrary data.
func TestPropertyRenamePreservesContent(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/src", Root)
	mustMkdirAll(t, fs, "/dst", Root)
	f := func(data []byte) bool {
		if err := fs.WriteFile("/src/f", data, appA, ModeShared); err != nil {
			return false
		}
		if err := fs.Rename("/src/f", "/dst/f", appA); err != nil {
			return false
		}
		got, err := fs.ReadFile("/dst/f", appA)
		if err != nil {
			return false
		}
		ok := string(got) == string(data) && !fs.Exists("/src/f")
		// Reset for next iteration.
		return ok && fs.Remove("/dst/f", appA) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
