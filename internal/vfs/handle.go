package vfs

import (
	"fmt"
	"io"

	"github.com/ghost-installer/gia/internal/fault"
)

// OpenFlag selects how a file is opened.
type OpenFlag int

// Open flags.
const (
	FlagRead OpenFlag = 1 << iota
	FlagWrite
	FlagCreate
	FlagTrunc
	FlagAppend
)

// Handle is an open file descriptor. Closing a handle emits CLOSE_WRITE if
// any write happened through it and CLOSE_NOWRITE otherwise — the exact
// signal the paper's attacks and defenses key on.
type Handle struct {
	fs     *FS
	node   *node
	path   string
	actor  UID
	flags  OpenFlag
	offset int64
	wrote  bool
	closed bool
}

// Open opens the file at p on behalf of actor. FlagCreate creates a missing
// regular file (mode filtered through the mount policy's DeriveMode);
// FlagTrunc empties it. Opening emits an OPEN event.
func (fs *FS) Open(p string, actor UID, flags OpenFlag, mode Mode) (*Handle, error) {
	if flags&(FlagRead|FlagWrite) == 0 {
		return nil, fmt.Errorf("open %q: need read or write: %w", p, ErrInvalidPath)
	}
	if err := fs.injectErr(fault.SiteVFSOpen, p); err != nil {
		return nil, fmt.Errorf("open %q: %w", p, err)
	}
	// walkCore directly: the FlagCreate miss is the common case for staging
	// writes, and the wrapped not-exist error would be allocated only to be
	// discarded.
	n, wclean, errno := fs.walkCore(p, true, 0)
	var full string
	created := false
	if errno != nil {
		if flags&FlagCreate == 0 {
			if wclean == "" {
				return nil, errno
			}
			return nil, &pathError{wclean, errno}
		}
		parent, name, clean, perr := fs.parentOf(p)
		if perr != nil {
			return nil, perr
		}
		full = fullFor(parent, name, clean)
		if cerr := fs.check(Request{Op: OpCreate, Path: full, Actor: actor}); cerr != nil {
			return nil, cerr
		}
		derived := fs.policyFor(full).DeriveMode(fs, full, actor, mode)
		n = fs.newNode()
		n.kind = kindFile
		n.name = name
		n.parent = parent
		n.cpath = full
		n.owner = actor
		n.mode = derived
		n.modTime = fs.now()
		addChild(parent, name, n)
		created = true
		fs.emit(Event{Kind: EvCreate, Path: full, Actor: actor})
	} else {
		if n.cpath == "" && n.parent != nil && n.pathIs(wclean) {
			n.cpath = wclean
		}
		full = n.path()
	}
	if n.kind == kindDir {
		return nil, fmt.Errorf("open %q: %w", p, ErrIsDir)
	}
	if flags&FlagRead != 0 && !created {
		if err := fs.check(Request{Op: OpRead, Path: full, Actor: actor, Info: fs.infoScratch(n)}); err != nil {
			return nil, err
		}
	}
	if flags&FlagWrite != 0 && !created {
		if err := fs.check(Request{Op: OpWrite, Path: full, Actor: actor, Info: fs.infoScratch(n)}); err != nil {
			return nil, err
		}
	}
	h := &Handle{fs: fs, node: n, path: full, actor: actor, flags: flags}
	fs.emit(Event{Kind: EvOpen, Path: full, Actor: actor})
	if flags&FlagTrunc != 0 && !created {
		if err := fs.chargeSpace(full, -int64(len(n.data))); err != nil {
			return nil, err
		}
		n.data = nil
		n.shared = false
		n.modTime = fs.now()
		h.wrote = true
		fs.emit(Event{Kind: EvModify, Path: full, Actor: actor})
	}
	if flags&FlagAppend != 0 {
		h.offset = int64(len(n.data))
	}
	return h, nil
}

// Path reports the (resolved) path the handle refers to.
func (h *Handle) Path() string { return h.path }

// Size reports the current file size.
func (h *Handle) Size() int64 { return int64(len(h.node.data)) }

// Write appends p at the current offset, emitting a MODIFY event.
func (h *Handle) Write(p []byte) (int, error) {
	if h.closed {
		return 0, ErrClosedHandle
	}
	if h.flags&FlagWrite == 0 {
		return 0, fmt.Errorf("write %q: read-only handle: %w", h.path, ErrPermission)
	}
	if err := h.fs.injectErr(fault.SiteVFSWrite, h.path); err != nil {
		return 0, fmt.Errorf("write %q: %w", h.path, err)
	}
	end := h.offset + int64(len(p))
	if len(p) > 0 && h.node.shared {
		// Copy-on-write: the backing bytes are an adopted shared buffer
		// still aliased by their publisher, so mutating them in place would
		// corrupt every other reader (a TOCTOU overwrite of a staged APK
		// must never reach the market's hosted listing). Unshare first.
		h.node.data = append([]byte(nil), h.node.data...)
		h.node.shared = false
	}
	if grow := end - int64(len(h.node.data)); grow > 0 {
		if err := h.fs.chargeSpace(h.path, grow); err != nil {
			return 0, err
		}
		if end <= int64(cap(h.node.data)) {
			old := len(h.node.data)
			h.node.data = h.node.data[:end]
			clear(h.node.data[old:])
		} else {
			// Grow with headroom so chunked downloads don't reallocate and
			// re-zero the whole file on every 64 KiB chunk.
			newCap := 2 * cap(h.node.data)
			if int64(newCap) < end {
				newCap = int(end)
			}
			nd := make([]byte, end, newCap)
			copy(nd, h.node.data)
			h.node.data = nd
			h.node.shared = false
		}
	}
	copy(h.node.data[h.offset:end], p)
	h.offset = end
	h.wrote = true
	h.node.modTime = h.fs.now()
	h.fs.emit(Event{Kind: EvModify, Path: h.path, Actor: h.actor})
	return len(p), nil
}

// Read reads from the current offset, emitting an ACCESS event.
func (h *Handle) Read(p []byte) (int, error) {
	if h.closed {
		return 0, ErrClosedHandle
	}
	if h.flags&FlagRead == 0 {
		return 0, fmt.Errorf("read %q: write-only handle: %w", h.path, ErrPermission)
	}
	if err := h.fs.injectErr(fault.SiteVFSRead, h.path); err != nil {
		return 0, fmt.Errorf("read %q: %w", h.path, err)
	}
	if h.offset >= int64(len(h.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.node.data[h.offset:])
	h.offset += int64(n)
	h.fs.emit(Event{Kind: EvAccess, Path: h.path, Actor: h.actor})
	return n, nil
}

// ReadAt reads len(p) bytes at off without moving the offset.
func (h *Handle) ReadAt(p []byte, off int64) (int, error) {
	if h.closed {
		return 0, ErrClosedHandle
	}
	if h.flags&FlagRead == 0 {
		return 0, fmt.Errorf("read %q: write-only handle: %w", h.path, ErrPermission)
	}
	if err := h.fs.injectErr(fault.SiteVFSRead, h.path); err != nil {
		return 0, fmt.Errorf("read %q: %w", h.path, err)
	}
	if off >= int64(len(h.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.node.data[off:])
	h.fs.emit(Event{Kind: EvAccess, Path: h.path, Actor: h.actor})
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Close releases the handle, emitting CLOSE_WRITE if the handle wrote and
// CLOSE_NOWRITE otherwise. Closing twice is an error.
func (h *Handle) Close() error {
	if h.closed {
		return ErrClosedHandle
	}
	h.closed = true
	kind := EvCloseNoWrite
	if h.wrote {
		kind = EvCloseWrite
	}
	h.fs.emit(Event{Kind: kind, Path: h.path, Actor: h.actor})
	return nil
}

// WriteFile creates or replaces the file at p with data in one open-write-
// close sequence (OPEN, MODIFY, CLOSE_WRITE events).
func (fs *FS) WriteFile(p string, data []byte, actor UID, mode Mode) error {
	h, err := fs.Open(p, actor, FlagWrite|FlagCreate|FlagTrunc, mode)
	if err != nil {
		return err
	}
	if _, err := h.Write(data); err != nil {
		// Best-effort close; the write error is the one to report.
		_ = h.Close()
		return err
	}
	return h.Close()
}

// ReadFile returns a copy of the file's content (OPEN, ACCESS,
// CLOSE_NOWRITE events).
func (fs *FS) ReadFile(p string, actor UID) ([]byte, error) {
	h, err := fs.Open(p, actor, FlagRead, 0)
	if err != nil {
		return nil, err
	}
	defer func() { _ = h.Close() }()
	out := make([]byte, h.Size())
	if len(out) == 0 {
		return out, nil
	}
	if _, err := h.ReadAt(out, 0); err != nil && err != io.EOF {
		return nil, err
	}
	return out, nil
}

// WriteShared is Write for an immutable shared buffer: instead of copying p
// into the file, the (empty) file adopts p as its backing store, capped so
// any later growth reallocates rather than scribbling past the shared
// bytes. Checks, fault probes, space accounting and events match Write
// exactly. The handle must be freshly opened with FlagTrunc, and callers
// must never modify p afterwards. The adopted buffer is marked shared on
// the node: a later in-place rewrite through a non-truncating handle
// unshares it first (copy-on-write in Write), so the publisher's bytes
// stay immutable no matter how the file is later mutated.
func (h *Handle) WriteShared(p []byte) (int, error) {
	if h.closed {
		return 0, ErrClosedHandle
	}
	if h.flags&FlagWrite == 0 {
		return 0, fmt.Errorf("write %q: read-only handle: %w", h.path, ErrPermission)
	}
	if h.offset != 0 || len(h.node.data) != 0 {
		return h.Write(p) // mid-file writes still copy
	}
	if err := h.fs.injectErr(fault.SiteVFSWrite, h.path); err != nil {
		return 0, fmt.Errorf("write %q: %w", h.path, err)
	}
	if len(p) > 0 {
		if err := h.fs.chargeSpace(h.path, int64(len(p))); err != nil {
			return 0, err
		}
		h.node.data = p[:len(p):len(p)]
		h.node.shared = true
	}
	h.offset = int64(len(p))
	h.wrote = true
	h.node.modTime = h.fs.now()
	h.fs.emit(Event{Kind: EvModify, Path: h.path, Actor: h.actor})
	return len(p), nil
}

// WriteFileShared is WriteFile for an immutable shared buffer: the created
// or truncated file aliases data instead of copying it, with the same
// OPEN/MODIFY/CLOSE_WRITE event stream. Installers copy the same encoded
// APK image onto every reset device of a sweep; sharing the buffer removes
// the dominant per-schedule allocation.
func (fs *FS) WriteFileShared(p string, data []byte, actor UID, mode Mode) error {
	h, err := fs.Open(p, actor, FlagWrite|FlagCreate|FlagTrunc, mode)
	if err != nil {
		return err
	}
	if _, err := h.WriteShared(data); err != nil {
		_ = h.Close()
		return err
	}
	return h.Close()
}

// ReadFileShared returns the file's content without copying, emitting the
// same OPEN/ACCESS/CLOSE_NOWRITE sequence (and probing the same fault
// sites) as ReadFile. The returned slice aliases the live file data:
// callers must treat it as read-only and finish with it before the
// simulation writes to the same file. Verification loops read staged APKs
// hundreds of times per install, so the copy in ReadFile dominates their
// allocation profile.
func (fs *FS) ReadFileShared(p string, actor UID) ([]byte, error) {
	if err := fs.injectErr(fault.SiteVFSOpen, p); err != nil {
		return nil, fmt.Errorf("open %q: %w", p, err)
	}
	n, full, err := fs.lookupFull(p, true)
	if err != nil {
		return nil, err
	}
	if n.kind == kindDir {
		return nil, fmt.Errorf("open %q: %w", p, ErrIsDir)
	}
	if err := fs.check(Request{Op: OpRead, Path: full, Actor: actor, Info: fs.infoScratch(n)}); err != nil {
		return nil, err
	}
	fs.emit(Event{Kind: EvOpen, Path: full, Actor: actor})
	data := n.data
	if len(data) > 0 {
		if err := fs.injectErr(fault.SiteVFSRead, full); err != nil {
			fs.emit(Event{Kind: EvCloseNoWrite, Path: full, Actor: actor})
			return nil, fmt.Errorf("read %q: %w", full, err)
		}
		fs.emit(Event{Kind: EvAccess, Path: full, Actor: actor})
	}
	fs.emit(Event{Kind: EvCloseNoWrite, Path: full, Actor: actor})
	return data, nil
}

// ReadTail returns the last n bytes of the file at p — how the wait-and-see
// attacker polls for an APK's End-Of-Central-Directory record.
func (fs *FS) ReadTail(p string, n int, actor UID) ([]byte, error) {
	h, err := fs.Open(p, actor, FlagRead, 0)
	if err != nil {
		return nil, err
	}
	defer func() { _ = h.Close() }()
	size := h.Size()
	if int64(n) > size {
		n = int(size)
	}
	out := make([]byte, n)
	if n == 0 {
		return out, nil
	}
	if _, err := h.ReadAt(out, size-int64(n)); err != nil && err != io.EOF {
		return nil, err
	}
	return out, nil
}
