// Package vfs implements the in-memory Unix-like filesystem of the simulated
// Android device: directories, regular files, symbolic links, UID ownership,
// permission bits, pluggable per-mount access policies (used by the FUSE
// daemon for /sdcard) and inotify-style event emission (used by the
// FileObserver class and by the attacks and defenses built on it).
package vfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"time"

	"github.com/ghost-installer/gia/internal/fault"
)

// UID identifies the acting process/app, following Android's convention:
// UID 0 is root, 1000 is the system server, and app UIDs start at 10000.
type UID int

// Well-known UIDs.
const (
	Root   UID = 0
	System UID = 1000
)

// IsSystem reports whether the UID belongs to a system process (root or a
// UID below the first app UID).
func (u UID) IsSystem() bool { return u < 10000 }

// Mode holds simplified Unix permission bits (owner/group/other rwx).
type Mode uint16

// Common permission modes.
const (
	ModeOwnerRead  Mode = 0o400
	ModeOwnerWrite Mode = 0o200
	ModeGroupRead  Mode = 0o040
	ModeOtherRead  Mode = 0o004
	ModeOtherWrite Mode = 0o002

	// ModePrivate is the default for app-private files: rw- --- ---.
	ModePrivate Mode = 0o600
	// ModeWorldReadable marks a file readable by every app: rw- r-- r--.
	// Installers using internal storage must set this on a staged APK or
	// the PackageManager cannot read it (Section II of the paper).
	ModeWorldReadable Mode = 0o644
	// ModeProtectedAPK is the mode the patched FUSE daemon derives for
	// APKs on the SD card: rw- r-- ---.
	ModeProtectedAPK Mode = 0o640
	// ModeShared is the default for files on shared external storage.
	ModeShared Mode = 0o666
	// ModeDir is the default directory mode.
	ModeDir Mode = 0o755
)

// WorldReadable reports whether the "other" read bit is set.
func (m Mode) WorldReadable() bool { return m&ModeOtherRead != 0 }

// Errors returned by filesystem operations.
var (
	ErrNotExist     = errors.New("vfs: file does not exist")
	ErrExist        = errors.New("vfs: file already exists")
	ErrPermission   = errors.New("vfs: permission denied")
	ErrIsDir        = errors.New("vfs: is a directory")
	ErrNotDir       = errors.New("vfs: not a directory")
	ErrNotEmpty     = errors.New("vfs: directory not empty")
	ErrNoSpace      = errors.New("vfs: no space left on device")
	ErrLinkLoop     = errors.New("vfs: too many levels of symbolic links")
	ErrInvalidPath  = errors.New("vfs: invalid path")
	ErrClosedHandle = errors.New("vfs: handle is closed")
)

const maxSymlinkHops = 16

// Info describes a file, directory or symlink.
type Info struct {
	Path       string
	Name       string
	Size       int64
	Mode       Mode
	Owner      UID
	IsDir      bool
	IsSymlink  bool
	LinkTarget string
	ModTime    time.Duration
}

type nodeKind int

const (
	kindDir nodeKind = iota + 1
	kindFile
	kindSymlink
)

type node struct {
	kind     nodeKind
	name     string
	parent   *node
	children []*node // kindDir, sorted by name
	data     []byte  // kindFile
	// shared marks data as an adopted immutable buffer (WriteShared): the
	// bytes are aliased by their publisher (e.g. a market listing), so any
	// in-place mutation must unshare first (copy-on-write in Handle.Write).
	shared  bool
	target  string // kindSymlink
	owner   UID
	mode    Mode
	modTime time.Duration
	// cpath memoizes path(): every open, event emission and Info build
	// renders the full path, and rebuilding it by walking the parent chain
	// dominated the event hot path. Rename invalidates the moved subtree.
	cpath string
	// baseline marks a directory as part of the factory image recorded by
	// MarkBaseline: Reset keeps it (and its memoized path) in place. Any
	// mutation — chmod, chown, rename — clears the flag, so a preserved
	// directory is always bit-identical to its just-booted state.
	baseline bool
}

func (n *node) path() string {
	if n.parent == nil {
		return "/"
	}
	if n.cpath != "" {
		return n.cpath
	}
	parent := n.parent.path()
	if parent == "/" {
		n.cpath = "/" + n.name
	} else {
		n.cpath = parent + "/" + n.name
	}
	return n.cpath
}

// invalidatePaths clears the memoized paths of n and everything beneath it,
// after a rename re-roots the subtree. A moved directory also stops being
// baseline: it is no longer where the factory image put it.
func invalidatePaths(n *node) {
	n.cpath = ""
	n.baseline = false
	for _, c := range n.children {
		invalidatePaths(c)
	}
}

// childIndex returns the position of name in n's sorted children slice, or
// the insertion point if absent (found reports which).
func (n *node) childIndex(name string) (int, bool) {
	lo, hi := 0, len(n.children)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if n.children[mid].name < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.children) && n.children[lo].name == name
}

// child returns the entry named name, or nil. Directories in a device image
// are tiny, so a sorted slice beats a map: no per-directory map allocation,
// no string hashing on the lookup hot path, and List/Walk iterate in lexical
// order without collecting and sorting names first.
func (n *node) child(name string) *node {
	if i, ok := n.childIndex(name); ok {
		return n.children[i]
	}
	return nil
}

// addChild links n under parent, keeping the slice sorted. An existing entry
// with the same name is replaced (matching the old map semantics, which
// Rename relies on when overwriting a file).
func addChild(parent *node, name string, n *node) {
	i, ok := parent.childIndex(name)
	if ok {
		parent.children[i] = n
		return
	}
	parent.children = append(parent.children, nil)
	copy(parent.children[i+1:], parent.children[i:])
	parent.children[i] = n
}

// removeChild unlinks child from parent (no-op if absent).
func removeChild(parent, child *node) {
	if i, ok := parent.childIndex(child.name); ok && parent.children[i] == child {
		parent.children = append(parent.children[:i], parent.children[i+1:]...)
	}
}

func (n *node) info() Info {
	return Info{
		Path:       n.path(),
		Name:       n.name,
		Size:       int64(len(n.data)),
		Mode:       n.mode,
		Owner:      n.owner,
		IsDir:      n.kind == kindDir,
		IsSymlink:  n.kind == kindSymlink,
		LinkTarget: n.target,
		ModTime:    n.modTime,
	}
}

// FS is an in-memory filesystem. It is not safe for concurrent use: the
// simulation is single-threaded by design (see internal/sim).
type FS struct {
	root     *node
	now      func() time.Duration
	watchers map[string][]*Watch
	mounts   []mount // sorted by descending prefix length
	nextWID  int
	injector fault.Injector
	// free is the node recycle list, fed exclusively by Reset's baseline
	// prune — never by Remove, whose victims may still be referenced by
	// open handles within the run.
	free []*node
	// scratch backs infoScratch, the allocation-free Info pointer handed to
	// synchronous policy checks on the open/read hot paths.
	scratch Info
}

type mount struct {
	prefix   string
	policy   Policy
	capacity int64 // 0 means unlimited
	used     int64
}

// New creates an empty filesystem whose event timestamps come from now
// (typically Scheduler.Now). The root directory is owned by Root.
func New(now func() time.Duration) *FS {
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &FS{
		root:     &node{kind: kindDir, owner: Root, mode: ModeDir},
		now:      now,
		watchers: make(map[string][]*Watch),
	}
}

// Reset returns the filesystem to its just-created state while keeping the
// mount table: the policies installed at boot are part of the device's
// hardware configuration, not its mutable state. Directories stamped by
// MarkBaseline survive in place (they are provably untouched); everything
// else is pruned and recycled. Watches created before Reset are marked
// closed so stale subscriptions cannot observe the next run; file handles
// must likewise not outlive a Reset, since the nodes they reference may be
// recycled into the next run's tree.
func (fs *FS) Reset() {
	fs.root.owner, fs.root.mode, fs.root.modTime = Root, ModeDir, 0
	fs.pruneChildren(fs.root)
	for _, list := range fs.watchers {
		for _, w := range list {
			w.closed = true
		}
	}
	clear(fs.watchers)
	fs.nextWID = 0
	for i := range fs.mounts {
		fs.mounts[i].used = 0
	}
	fs.injector = nil
}

// MarkBaseline stamps every directory currently in the tree as part of the
// factory image, so Reset keeps it — with its memoized path and sorted
// children slice — instead of discarding the whole tree. Re-preparing a
// pooled device's skeleton then hits MkdirAll's everything-exists fast
// path. Files and symlinks are never baseline: their contents are run
// state, rewritten by the boot wiring anyway.
func (fs *FS) MarkBaseline() { markBaseline(fs.root) }

func markBaseline(n *node) {
	if n.kind != kindDir {
		return
	}
	n.baseline = true
	for _, c := range n.children {
		markBaseline(c)
	}
}

// pruneChildren removes every non-baseline node under n, recycling the
// detached subtrees. Kept directories are exactly as Boot left them — any
// mutation clears the baseline flag — so nothing needs restoring.
func (fs *FS) pruneChildren(n *node) {
	kept := n.children[:0]
	for _, c := range n.children {
		if c.baseline {
			fs.pruneChildren(c)
			kept = append(kept, c)
		} else {
			fs.freeSubtree(c)
		}
	}
	tail := n.children[len(kept):]
	for i := range tail {
		tail[i] = nil
	}
	n.children = kept
}

// maxFreeNodes bounds the recycle list so one run's huge tree cannot pin
// memory for the arena's whole life.
const maxFreeNodes = 512

// freeSubtree returns n and everything beneath it to the recycle list,
// clearing all fields except the children slice's capacity (re-sorted
// inserts reuse it).
func (fs *FS) freeSubtree(n *node) {
	for _, c := range n.children {
		fs.freeSubtree(c)
	}
	if len(fs.free) >= maxFreeNodes {
		return
	}
	*n = node{children: n.children[:0]}
	fs.free = append(fs.free, n)
}

// newNode takes a recycled node or allocates a fresh one. All fields are
// zero except possibly a retained children capacity.
func (fs *FS) newNode() *node {
	if k := len(fs.free); k > 0 {
		nd := fs.free[k-1]
		fs.free[k-1] = nil
		fs.free = fs.free[:k-1]
		return nd
	}
	return &node{}
}

// infoScratch renders n's Info into the FS's scratch slot and returns its
// address: policy checks are synchronous and never retain Request.Info, so
// the open/read hot paths can skip allocating a copy per check.
func (fs *FS) infoScratch(n *node) *Info {
	fs.scratch = n.info()
	return &fs.scratch
}

// Mount installs an access policy over the subtree rooted at prefix, with an
// optional capacity in bytes (0 = unlimited). Longest-prefix match wins.
// Mounting over an existing prefix replaces the previous policy.
func (fs *FS) Mount(prefix string, p Policy, capacity int64) error {
	prefix, err := cleanPath(prefix)
	if err != nil {
		return err
	}
	for i := range fs.mounts {
		if fs.mounts[i].prefix == prefix {
			fs.mounts[i].policy = p
			fs.mounts[i].capacity = capacity
			return nil
		}
	}
	fs.mounts = append(fs.mounts, mount{prefix: prefix, policy: p, capacity: capacity})
	sort.Slice(fs.mounts, func(i, j int) bool {
		return len(fs.mounts[i].prefix) > len(fs.mounts[j].prefix)
	})
	return nil
}

// MountUsage reports bytes used and capacity of the mount covering prefix.
func (fs *FS) MountUsage(prefix string) (used, capacity int64, err error) {
	prefix, err = cleanPath(prefix)
	if err != nil {
		return 0, 0, err
	}
	for i := range fs.mounts {
		if fs.mounts[i].prefix == prefix {
			return fs.mounts[i].used, fs.mounts[i].capacity, nil
		}
	}
	return 0, 0, fmt.Errorf("vfs: no mount at %q: %w", prefix, ErrNotExist)
}

func (fs *FS) mountFor(p string) *mount {
	for i := range fs.mounts {
		if underPrefix(p, fs.mounts[i].prefix) {
			return &fs.mounts[i]
		}
	}
	return nil
}

func (fs *FS) policyFor(p string) Policy {
	if m := fs.mountFor(p); m != nil && m.policy != nil {
		return m.policy
	}
	return defaultDAC{}
}

func (fs *FS) check(req Request) error {
	return fs.policyFor(req.Path).Check(fs, req)
}

// SetFaultInjector installs (or, with nil, removes) the fault hook probed
// on open, read, write and rename (fault.SiteVFS*). Only error-kind faults
// apply: filesystem calls are synchronous, so there is nothing to delay or
// duplicate.
func (fs *FS) SetFaultInjector(fi fault.Injector) { fs.injector = fi }

// injectErr probes the injector at site for p and returns the injected
// error, if any.
func (fs *FS) injectErr(site fault.Site, p string) error {
	if fs.injector == nil {
		return nil
	}
	if act := fs.injector.Probe(site, p, fs.now()); act.Kind == fault.KindError {
		return act.Err
	}
	return nil
}

// chargeSpace accounts newBytes-oldBytes against the mount covering p.
func (fs *FS) chargeSpace(p string, delta int64) error {
	m := fs.mountFor(p)
	if m == nil {
		return nil
	}
	if m.capacity > 0 && delta > 0 && m.used+delta > m.capacity {
		return fmt.Errorf("mount %s: %w", m.prefix, ErrNoSpace)
	}
	m.used += delta
	if m.used < 0 {
		m.used = 0
	}
	return nil
}

// pathError is the lazily-formatted form of fmt.Errorf("%q: %w", path, err)
// for the lookup hot path: existence probes (attacker pollers, MkdirAll,
// Exists) construct and immediately discard huge numbers of not-exist
// errors, so the string rendering is deferred until someone reads it.
type pathError struct {
	path string
	err  error
}

func (e *pathError) Error() string { return fmt.Sprintf("%q: %s", e.path, e.err) }
func (e *pathError) Unwrap() error { return e.err }

// cleanPath validates and normalizes an absolute path.
func cleanPath(p string) (string, error) {
	if p == "" || p[0] != '/' {
		return "", fmt.Errorf("%q: %w", p, ErrInvalidPath)
	}
	if isCleanPath(p) {
		return p, nil
	}
	return path.Clean(p), nil
}

// isCleanPath reports whether an absolute path is already in path.Clean
// form — the overwhelmingly common case on the simulation's hot paths,
// where Clean's byte-by-byte rebuild (and its allocation) can be skipped.
func isCleanPath(p string) bool {
	if p == "/" {
		return true
	}
	if p[len(p)-1] == '/' {
		return false
	}
	for i := 0; i < len(p); i++ {
		if p[i] != '/' {
			continue
		}
		if p[i+1] == '/' {
			return false // empty component
		}
		if p[i+1] == '.' {
			if i+2 == len(p) || p[i+2] == '/' {
				return false // "." component
			}
			if p[i+2] == '.' && (i+3 == len(p) || p[i+3] == '/') {
				return false // ".." component
			}
		}
	}
	return true
}

// underPrefix reports whether p equals prefix or lies beneath it,
// respecting path-component boundaries.
func underPrefix(p, prefix string) bool {
	if prefix == "/" {
		return true
	}
	return p == prefix || strings.HasPrefix(p, prefix+"/")
}

// lookup walks to the node at p. If followLast, a trailing symlink is
// resolved. Intermediate symlinks are always resolved.
func (fs *FS) lookup(p string, followLast bool) (*node, error) {
	return fs.walk(p, followLast, 0)
}

func (fs *FS) walk(p string, followLast bool, hops int) (*node, error) {
	n, clean, errno := fs.walkCore(p, followLast, hops)
	switch {
	case errno == nil:
		return n, nil
	case clean == "":
		return nil, errno // cleanPath's own descriptive error
	default:
		return nil, &pathError{clean, errno}
	}
}

// walkCore is walk without the error allocation: failures come back as a
// bare sentinel (ErrNotExist, ErrNotDir, ErrLinkLoop) plus the cleaned
// path for walk to wrap. Existence probes — Exists and MkdirAll's
// everything-already-there fast path — call it directly, because there a
// failed lookup is the expected outcome and must not allocate.
func (fs *FS) walkCore(p string, followLast bool, hops int) (*node, string, error) {
	if hops > maxSymlinkHops {
		return nil, p, ErrLinkLoop
	}
	clean, err := cleanPath(p)
	if err != nil {
		return nil, "", err
	}
	cur := fs.root
	if clean == "/" {
		return cur, clean, nil
	}
	// Iterate components by slicing rather than strings.Split: lookups are
	// the single hottest operation in the simulation and must not allocate.
	rest := clean[1:]
	for {
		part := rest
		slash := strings.IndexByte(rest, '/')
		last := slash < 0
		if !last {
			part = rest[:slash]
		}
		if cur.kind != kindDir {
			return nil, clean, ErrNotDir
		}
		child := cur.child(part)
		if child == nil {
			return nil, clean, ErrNotExist
		}
		if child.kind == kindSymlink && (!last || followLast) {
			target := child.target
			if !strings.HasPrefix(target, "/") {
				target = path.Join(cur.path(), target)
			}
			if !last {
				target = target + "/" + rest[slash+1:]
			}
			return fs.walkCore(target, followLast, hops+1)
		}
		cur = child
		if last {
			return cur, clean, nil
		}
		rest = rest[slash+1:]
	}
}

// parentOf resolves the directory that would contain path p, following
// symlinks in the directory portion, and returns it with the final name and
// the cleaned form of p (for fullFor to reuse).
func (fs *FS) parentOf(p string) (*node, string, string, error) {
	clean, err := cleanPath(p)
	if err != nil {
		return nil, "", "", err
	}
	if clean == "/" {
		return nil, "", "", fmt.Errorf("%q: %w", p, ErrInvalidPath)
	}
	dir, name := path.Split(clean)
	dir = strings.TrimSuffix(dir, "/")
	if dir == "" {
		dir = "/"
	}
	dnode, err := fs.lookup(dir, true)
	if err != nil {
		return nil, "", "", err
	}
	if dnode.kind != kindDir {
		return nil, "", "", fmt.Errorf("%q: %w", dir, ErrNotDir)
	}
	return dnode, name, clean, nil
}

// Resolve returns the physical path p refers to after following every
// symlink. This is the check the Download Manager performs on destination
// paths; the gap between Resolve and a later operation on the same string
// path is exactly the TOCTOU window of Section III-C.
func (fs *FS) Resolve(p string) (string, error) {
	_, full, err := fs.lookupFull(p, true)
	return full, err
}

// Stat describes the file at p, following symlinks.
func (fs *FS) Stat(p string) (Info, error) {
	n, err := fs.lookup(p, true)
	if err != nil {
		return Info{}, err
	}
	return n.info(), nil
}

// Lstat describes the file at p without following a trailing symlink.
func (fs *FS) Lstat(p string) (Info, error) {
	n, err := fs.lookup(p, false)
	if err != nil {
		return Info{}, err
	}
	return n.info(), nil
}

// Exists reports whether p resolves to an existing file or directory.
func (fs *FS) Exists(p string) bool {
	n, _, _ := fs.walkCore(p, true, 0)
	return n != nil
}

// Mkdir creates a single directory owned by actor.
func (fs *FS) Mkdir(p string, actor UID, mode Mode) error {
	parent, name, clean, err := fs.parentOf(p)
	if err != nil {
		return err
	}
	if parent.child(name) != nil {
		return fmt.Errorf("%q: %w", p, ErrExist)
	}
	full := fullFor(parent, name, clean)
	if err := fs.check(Request{Op: OpCreate, Path: full, Actor: actor, Dir: true}); err != nil {
		return err
	}
	n := fs.newNode()
	n.kind = kindDir
	n.name = name
	n.parent = parent
	n.cpath = full
	n.owner = actor
	n.mode = mode
	n.modTime = fs.now()
	addChild(parent, name, n)
	fs.emit(Event{Kind: EvCreate, Path: full, Actor: actor, IsDir: true})
	return nil
}

// MkdirAll creates p and any missing parents, owned by actor.
func (fs *FS) MkdirAll(p string, actor UID, mode Mode) error {
	clean, err := cleanPath(p)
	if err != nil {
		return err
	}
	if clean == "/" {
		return nil
	}
	// Fast path: the full tree usually already exists — one walk instead of
	// one per component, and no error allocation when it does not.
	if n, _, errno := fs.walkCore(clean, true, 0); errno == nil {
		if n.kind != kindDir {
			return fmt.Errorf("%q: %w", clean, ErrNotDir)
		}
		return nil
	}
	// Single descent: step through existing components in place and create
	// each missing one directly under its (already resolved) parent, with
	// the same per-component check and CREATE event as Mkdir. Re-walking
	// from the root per component made directory skeletons the hottest
	// path of a device reset.
	cur := fs.root
	end := 0
	direct := true // no symlink crossed: clean[:end] is cur's canonical path
	for end != len(clean) {
		start := end + 1
		if slash := strings.IndexByte(clean[start:], '/'); slash < 0 {
			end = len(clean)
		} else {
			end = start + slash
		}
		name := clean[start:end]
		if cur.kind != kindDir {
			return &pathError{clean[:start-1], ErrNotDir}
		}
		if child := cur.child(name); child != nil {
			if child.kind != kindSymlink {
				cur = child
				continue
			}
			// Symlinked prefix: resolve with a full walk. A dangling link
			// occupies the name, so creation would fail like Mkdir's.
			n, err := fs.lookup(clean[:end], true)
			if err != nil {
				if errors.Is(err, ErrNotExist) {
					return fmt.Errorf("%q: %w", clean[:end], ErrExist)
				}
				return err
			}
			cur = n
			direct = false
			continue
		}
		full := clean[:end]
		if !direct {
			full = childPath(cur, name)
		}
		if err := fs.check(Request{Op: OpCreate, Path: full, Actor: actor, Dir: true}); err != nil {
			return err
		}
		n := fs.newNode()
		n.kind = kindDir
		n.name = name
		n.parent = cur
		n.cpath = full
		n.owner = actor
		n.mode = mode
		n.modTime = fs.now()
		addChild(cur, name, n)
		fs.emit(Event{Kind: EvCreate, Path: full, Actor: actor, IsDir: true})
		cur = n
	}
	if cur.kind != kindDir {
		return &pathError{clean, ErrNotDir}
	}
	return nil
}

// Symlink creates a symbolic link at linkPath pointing at target. The
// target need not exist (dangling links are legal, as on Linux).
func (fs *FS) Symlink(target, linkPath string, actor UID) error {
	parent, name, clean, err := fs.parentOf(linkPath)
	if err != nil {
		return err
	}
	if parent.child(name) != nil {
		return fmt.Errorf("%q: %w", linkPath, ErrExist)
	}
	full := fullFor(parent, name, clean)
	if err := fs.check(Request{Op: OpCreate, Path: full, Actor: actor}); err != nil {
		return err
	}
	n := fs.newNode()
	n.kind = kindSymlink
	n.name = name
	n.parent = parent
	n.cpath = full
	n.target = target
	n.owner = actor
	n.mode = 0o777
	n.modTime = fs.now()
	addChild(parent, name, n)
	fs.emit(Event{Kind: EvCreate, Path: full, Actor: actor})
	return nil
}

// Retarget atomically re-points an existing symlink — the core primitive of
// the Download Manager TOCTOU attack. Only the link's owner or a system
// process may retarget it.
func (fs *FS) Retarget(linkPath, newTarget string, actor UID) error {
	n, err := fs.lookup(linkPath, false)
	if err != nil {
		return err
	}
	if n.kind != kindSymlink {
		return fmt.Errorf("%q: not a symlink: %w", linkPath, ErrInvalidPath)
	}
	if n.owner != actor && !actor.IsSystem() {
		return fmt.Errorf("retarget %q as uid %d: %w", linkPath, actor, ErrPermission)
	}
	n.target = newTarget
	n.modTime = fs.now()
	return nil
}

// ReadLink returns the target of the symlink at p.
func (fs *FS) ReadLink(p string) (string, error) {
	n, err := fs.lookup(p, false)
	if err != nil {
		return "", err
	}
	if n.kind != kindSymlink {
		return "", fmt.Errorf("%q: not a symlink: %w", p, ErrInvalidPath)
	}
	return n.target, nil
}

// Chmod changes the mode of the file at p. Permitted for the owner and
// system processes.
func (fs *FS) Chmod(p string, mode Mode, actor UID) error {
	n, full, err := fs.lookupFull(p, true)
	if err != nil {
		return err
	}
	if err := fs.check(Request{Op: OpChmod, Path: full, Actor: actor, Info: fs.infoScratch(n)}); err != nil {
		return err
	}
	n.mode = mode
	n.modTime = fs.now()
	n.baseline = false
	fs.emit(Event{Kind: EvAttrib, Path: full, Actor: actor})
	return nil
}

// Chown changes the owner of the file at p. Only system processes may do so.
func (fs *FS) Chown(p string, owner UID, actor UID) error {
	n, full, err := fs.lookupFull(p, true)
	if err != nil {
		return err
	}
	if !actor.IsSystem() {
		return fmt.Errorf("chown %q as uid %d: %w", p, actor, ErrPermission)
	}
	n.owner = owner
	n.modTime = fs.now()
	n.baseline = false
	fs.emit(Event{Kind: EvAttrib, Path: full, Actor: actor})
	return nil
}

// Remove unlinks the file, symlink or empty directory at p (not following a
// trailing symlink, like unlink(2)).
func (fs *FS) Remove(p string, actor UID) error {
	n, full, err := fs.lookupFull(p, false)
	if err != nil {
		return err
	}
	if n.parent == nil {
		return fmt.Errorf("remove /: %w", ErrInvalidPath)
	}
	if n.kind == kindDir && len(n.children) > 0 {
		return fmt.Errorf("%q: %w", p, ErrNotEmpty)
	}
	if err := fs.check(Request{Op: OpDelete, Path: full, Actor: actor, Info: fs.infoScratch(n)}); err != nil {
		return err
	}
	if n.kind == kindFile {
		if err := fs.chargeSpace(full, -int64(len(n.data))); err != nil {
			return err
		}
	}
	removeChild(n.parent, n)
	fs.emit(Event{Kind: EvDelete, Path: full, Actor: actor, IsDir: n.kind == kindDir})
	return nil
}

// RemoveAll removes p and, if it is a directory, everything beneath it.
func (fs *FS) RemoveAll(p string, actor UID) error {
	n, err := fs.lookup(p, false)
	if err != nil {
		if errors.Is(err, ErrNotExist) {
			return nil
		}
		return err
	}
	if n.kind == kindDir {
		// Snapshot: Remove mutates the slice while we iterate.
		kids := append([]*node(nil), n.children...)
		for _, c := range kids {
			if err := fs.RemoveAll(childPath(n, c.name), actor); err != nil {
				return err
			}
		}
	}
	return fs.Remove(n.path(), actor)
}

// Rename moves oldPath to newPath, overwriting a regular file at newPath if
// present. It emits MOVED_FROM / MOVED_TO events, which is how both the
// "move a pre-stored APK over the target" attack and the DAPP defense
// observe replacements.
func (fs *FS) Rename(oldPath, newPath string, actor UID) error {
	if err := fs.injectErr(fault.SiteVFSRename, oldPath); err != nil {
		return fmt.Errorf("rename %q: %w", oldPath, err)
	}
	n, oldFull, err := fs.lookupFull(oldPath, false)
	if err != nil {
		return err
	}
	if n.parent == nil {
		return fmt.Errorf("rename /: %w", ErrInvalidPath)
	}
	newParent, newName, newClean, err := fs.parentOf(newPath)
	if err != nil {
		return err
	}
	newFull := fullFor(newParent, newName, newClean)
	req := Request{Op: OpRename, Path: oldFull, Other: newFull, Actor: actor, Info: fs.infoScratch(n)}
	if err := fs.check(req); err != nil {
		return err
	}
	if existing := newParent.child(newName); existing != nil {
		if existing.kind == kindDir {
			return fmt.Errorf("%q: %w", newFull, ErrIsDir)
		}
		if err := fs.check(Request{Op: OpDelete, Path: newFull, Actor: actor, Info: fs.infoScratch(existing)}); err != nil {
			return err
		}
		if err := fs.chargeSpace(newFull, -int64(len(existing.data))); err != nil {
			return err
		}
	}
	// Move capacity accounting across mounts if needed.
	if n.kind == kindFile {
		size := int64(len(n.data))
		oldMount, newMount := fs.mountFor(oldFull), fs.mountFor(newFull)
		if oldMount != newMount {
			if err := fs.chargeSpace(newFull, size); err != nil {
				return err
			}
			if err := fs.chargeSpace(oldFull, -size); err != nil {
				return err
			}
		}
	}
	removeChild(n.parent, n)
	fs.emit(Event{Kind: EvMovedFrom, Path: oldFull, Actor: actor, IsDir: n.kind == kindDir})
	n.parent = newParent
	n.name = newName
	n.modTime = fs.now()
	invalidatePaths(n)
	n.cpath = newFull
	addChild(newParent, newName, n)
	fs.emit(Event{Kind: EvMovedTo, Path: newFull, Actor: actor, IsDir: n.kind == kindDir})
	return nil
}

// List returns the entries of the directory at p, sorted by name.
func (fs *FS) List(p string) ([]Info, error) {
	n, err := fs.lookup(p, true)
	if err != nil {
		return nil, err
	}
	if n.kind != kindDir {
		return nil, fmt.Errorf("%q: %w", p, ErrNotDir)
	}
	infos := make([]Info, 0, len(n.children))
	for _, c := range n.children {
		infos = append(infos, c.info())
	}
	return infos, nil
}

// Walk visits every path under root in depth-first lexical order.
func (fs *FS) Walk(root string, fn func(Info) error) error {
	n, err := fs.lookup(root, true)
	if err != nil {
		return err
	}
	return walkNode(n, fn)
}

func walkNode(n *node, fn func(Info) error) error {
	if err := fn(n.info()); err != nil {
		return err
	}
	if n.kind != kindDir {
		return nil
	}
	// Snapshot: fn may create or remove entries under n.
	kids := append([]*node(nil), n.children...)
	for _, c := range kids {
		if err := walkNode(c, fn); err != nil {
			return err
		}
	}
	return nil
}

func childPath(parent *node, name string) string {
	pp := parent.path()
	if pp == "/" {
		return "/" + name
	}
	return pp + "/" + name
}

// pathIs reports whether n's canonical full path equals p without building
// the path: components are compared from the tail upward, stopping early at
// the first memoized ancestor. Used to decide when a caller-supplied cleaned
// path can be reused instead of re-concatenated — path-string building was
// the top allocator in arena-reuse profiles.
func (n *node) pathIs(p string) bool {
	cur, rest := n, p
	for {
		if cur.cpath != "" {
			return cur.cpath == rest
		}
		if cur.parent == nil {
			return rest == "" || rest == "/"
		}
		k := len(rest) - len(cur.name)
		if k < 1 || rest[k-1] != '/' || rest[k:] != cur.name {
			return false
		}
		rest = rest[:k-1]
		cur = cur.parent
	}
}

// fullFor returns the canonical path of name under parent. When clean (the
// cleaned caller-supplied path) already ends in name and its directory
// portion matches parent, it is returned as-is — the no-symlink common case,
// which costs zero allocations and memoizes parent's path for free.
func fullFor(parent *node, name, clean string) string {
	k := len(clean) - len(name)
	if k >= 1 && clean[k-1] == '/' && clean[k:] == name {
		dir := clean[:k-1]
		if dir == "" {
			dir = "/"
		}
		if parent.pathIs(dir) {
			if parent.cpath == "" && parent.parent != nil {
				parent.cpath = dir
			}
			return clean
		}
	}
	return childPath(parent, name)
}

// lookupFull resolves p like lookup and additionally returns the node's
// canonical full path. When no symlink was crossed, the cleaned input is
// that path and is memoized into the node instead of being rebuilt later.
func (fs *FS) lookupFull(p string, followLast bool) (*node, string, error) {
	n, clean, errno := fs.walkCore(p, followLast, 0)
	if errno != nil {
		if clean == "" {
			return nil, "", errno
		}
		return nil, "", &pathError{clean, errno}
	}
	if n.cpath == "" && n.parent != nil && n.pathIs(clean) {
		n.cpath = clean
	}
	return n, n.path(), nil
}
