package vfs

import (
	"errors"
	"testing"
	"time"
)

func TestOpenErrorPaths(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/d", Root)

	if _, err := fs.Open("/d/f", appA, 0, 0); !errors.Is(err, ErrInvalidPath) {
		t.Errorf("open without read/write = %v", err)
	}
	if _, err := fs.Open("/d/missing", appA, FlagRead, 0); !errors.Is(err, ErrNotExist) {
		t.Errorf("open missing = %v", err)
	}
	if _, err := fs.Open("/d", appA, FlagRead, 0); !errors.Is(err, ErrIsDir) {
		t.Errorf("open dir = %v", err)
	}
	if _, err := fs.Open("/missing/f", appA, FlagWrite|FlagCreate, 0); !errors.Is(err, ErrNotExist) {
		t.Errorf("create under missing dir = %v", err)
	}
	// Write-protected file cannot be opened for write by others.
	mustWrite(t, fs, "/d/ro", "x", appA, ModeWorldReadable)
	if _, err := fs.Open("/d/ro", appB, FlagWrite, 0); !errors.Is(err, ErrPermission) {
		t.Errorf("write open on read-only = %v", err)
	}
	// Unreadable file cannot be opened for read by others.
	mustWrite(t, fs, "/d/priv", "x", appA, ModePrivate)
	if _, err := fs.Open("/d/priv", appB, FlagRead, 0); !errors.Is(err, ErrPermission) {
		t.Errorf("read open on private = %v", err)
	}
}

func TestReadTailOnUnreadableFile(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/d", Root)
	mustWrite(t, fs, "/d/priv", "secret", appA, ModePrivate)
	if _, err := fs.ReadTail("/d/priv", 4, appB); !errors.Is(err, ErrPermission) {
		t.Errorf("tail of private file = %v", err)
	}
}

func TestRenameErrorPaths(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/a/sub", Root)
	mustWrite(t, fs, "/a/f", "x", appA, ModeShared)

	if err := fs.Rename("/missing", "/a/g", appA); !errors.Is(err, ErrNotExist) {
		t.Errorf("rename missing = %v", err)
	}
	if err := fs.Rename("/a/f", "/missing/g", appA); !errors.Is(err, ErrNotExist) {
		t.Errorf("rename into missing dir = %v", err)
	}
	// Renaming over a directory is rejected.
	if err := fs.Rename("/a/f", "/a/sub", appA); !errors.Is(err, ErrIsDir) {
		t.Errorf("rename over dir = %v", err)
	}
	if err := fs.Rename("/", "/b", Root); !errors.Is(err, ErrInvalidPath) {
		t.Errorf("rename root = %v", err)
	}
}

func TestRenameAcrossMountsMovesAccounting(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/m1", Root)
	mustMkdirAll(t, fs, "/m2", Root)
	if err := fs.Mount("/m1", nil, 100); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mount("/m2", nil, 100); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, fs, "/m1/f", "0123456789", appA, ModeShared)

	used1, _, _ := fs.MountUsage("/m1")
	if used1 != 10 {
		t.Fatalf("m1 used = %d", used1)
	}
	if err := fs.Rename("/m1/f", "/m2/f", appA); err != nil {
		t.Fatal(err)
	}
	used1, _, _ = fs.MountUsage("/m1")
	used2, _, _ := fs.MountUsage("/m2")
	if used1 != 0 || used2 != 10 {
		t.Errorf("usage after cross-mount rename = %d / %d", used1, used2)
	}
	// A destination mount too small rejects the move.
	mustMkdirAll(t, fs, "/m3", Root)
	if err := fs.Mount("/m3", nil, 5); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/m2/f", "/m3/f", appA); !errors.Is(err, ErrNoSpace) {
		t.Errorf("cross-mount rename over capacity = %v", err)
	}
}

func TestMountReplaceAndUsageErrors(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/m", Root)
	if err := fs.Mount("/m", nil, 10); err != nil {
		t.Fatal(err)
	}
	// Remounting the same prefix replaces the capacity.
	if err := fs.Mount("/m", nil, 1000); err != nil {
		t.Fatal(err)
	}
	if _, capacity, err := fs.MountUsage("/m"); err != nil || capacity != 1000 {
		t.Errorf("capacity after remount = %d, %v", capacity, err)
	}
	if _, _, err := fs.MountUsage("/nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("usage of unmounted prefix = %v", err)
	}
	if err := fs.Mount("relative", nil, 0); !errors.Is(err, ErrInvalidPath) {
		t.Errorf("mount relative = %v", err)
	}
}

func TestLstatAndDanglingSymlink(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/d", Root)
	if err := fs.Symlink("/nowhere", "/d/link", appA); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Lstat("/d/link")
	if err != nil || !info.IsSymlink || info.LinkTarget != "/nowhere" {
		t.Errorf("lstat = %+v, %v", info, err)
	}
	// Stat follows and fails on the dangling target.
	if _, err := fs.Stat("/d/link"); !errors.Is(err, ErrNotExist) {
		t.Errorf("stat dangling = %v", err)
	}
	if _, err := fs.Resolve("/d/link"); !errors.Is(err, ErrNotExist) {
		t.Errorf("resolve dangling = %v", err)
	}
	// ReadLink of a non-symlink fails.
	mustWrite(t, fs, "/d/f", "x", appA, ModeShared)
	if _, err := fs.ReadLink("/d/f"); !errors.Is(err, ErrInvalidPath) {
		t.Errorf("readlink of file = %v", err)
	}
	// Retarget of a non-symlink fails.
	if err := fs.Retarget("/d/f", "/x", appA); !errors.Is(err, ErrInvalidPath) {
		t.Errorf("retarget of file = %v", err)
	}
}

func TestWalkErrorPropagation(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/d", Root)
	mustWrite(t, fs, "/d/f", "x", appA, ModeShared)
	wantErr := errors.New("stop")
	err := fs.Walk("/d", func(info Info) error {
		if info.Name == "f" {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("walk error = %v", err)
	}
	if err := fs.Walk("/missing", func(Info) error { return nil }); !errors.Is(err, ErrNotExist) {
		t.Errorf("walk missing root = %v", err)
	}
}

func TestSymlinkThroughFileIsNotDir(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/d", Root)
	mustWrite(t, fs, "/d/f", "x", appA, ModeShared)
	if _, err := fs.Stat("/d/f/deeper"); !errors.Is(err, ErrNotDir) {
		t.Errorf("walk through file = %v", err)
	}
}

func TestRemoveRootAndMissing(t *testing.T) {
	fs := newFS()
	if err := fs.Remove("/", Root); !errors.Is(err, ErrInvalidPath) {
		t.Errorf("remove root = %v", err)
	}
	if err := fs.Remove("/nope", Root); !errors.Is(err, ErrNotExist) {
		t.Errorf("remove missing = %v", err)
	}
}

func TestChmodMissingAndSymlinkExists(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/d", Root)
	if err := fs.Chmod("/d/none", ModeShared, appA); !errors.Is(err, ErrNotExist) {
		t.Errorf("chmod missing = %v", err)
	}
	if err := fs.Symlink("/t", "/d/l", appA); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/t", "/d/l", appA); !errors.Is(err, ErrExist) {
		t.Errorf("symlink over existing = %v", err)
	}
}

func TestEventAndOpStrings(t *testing.T) {
	kinds := []EventKind{EvCreate, EvOpen, EvAccess, EvModify, EvCloseWrite,
		EvCloseNoWrite, EvDelete, EvMovedFrom, EvMovedTo, EvAttrib}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty name for kind %d", k)
		}
	}
	ev := Event{Kind: EvCreate, Path: "/a/b", Actor: appA}
	if ev.Name() != "b" || ev.String() == "" {
		t.Errorf("event helpers: %q %q", ev.Name(), ev.String())
	}
	for _, op := range []Op{OpRead, OpWrite, OpCreate, OpDelete, OpRename, OpChmod} {
		if op.String() == "" {
			t.Errorf("empty name for op %d", op)
		}
	}
}

func TestHandleSequentialReadAndAccessors(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/d", Root)
	mustWrite(t, fs, "/d/f", "abcdefgh", appA, ModeShared)

	h, err := fs.Open("/d/f", appA, FlagRead, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = h.Close() }()
	if h.Path() != "/d/f" || h.Size() != 8 {
		t.Errorf("handle accessors = %q, %d", h.Path(), h.Size())
	}
	buf := make([]byte, 3)
	var got string
	for {
		n, err := h.Read(buf)
		got += string(buf[:n])
		if err != nil {
			break
		}
	}
	if got != "abcdefgh" {
		t.Errorf("sequential read = %q", got)
	}
	// ReadAt past EOF and short tail.
	if _, err := h.ReadAt(buf, 100); err == nil {
		t.Error("ReadAt past EOF succeeded")
	}
	if n, _ := h.ReadAt(buf, 6); n != 2 || string(buf[:2]) != "gh" {
		t.Errorf("short ReadAt = %d %q", n, buf[:2])
	}
}

func TestMkdirAllThroughFileFails(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/d", Root)
	mustWrite(t, fs, "/d/f", "x", appA, ModeShared)
	if err := fs.MkdirAll("/d/f/sub", Root, ModeDir); !errors.Is(err, ErrNotDir) {
		t.Errorf("MkdirAll through file = %v", err)
	}
	if err := fs.MkdirAll("/", Root, ModeDir); err != nil {
		t.Errorf("MkdirAll root = %v", err)
	}
	if err := fs.MkdirAll("rel", Root, ModeDir); !errors.Is(err, ErrInvalidPath) {
		t.Errorf("MkdirAll relative = %v", err)
	}
}

func TestRemoveAllPermissionPropagates(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/d/sub", appA)
	mustWrite(t, fs, "/d/sub/f", "x", appA, ModePrivate) // others lack write
	if err := fs.RemoveAll("/d", appB); !errors.Is(err, ErrPermission) {
		t.Errorf("foreign RemoveAll = %v", err)
	}
	if !fs.Exists("/d/sub/f") {
		t.Error("file removed despite the error")
	}
}

func TestWatchDirAccessorAndModeHelpers(t *testing.T) {
	fs := newFS()
	mustMkdirAll(t, fs, "/d", Root)
	w, err := fs.Watch("/d", EvAll, func(Event) {})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Dir() != "/d" {
		t.Errorf("Dir() = %q", w.Dir())
	}
	if !ModeWorldReadable.WorldReadable() || ModePrivate.WorldReadable() {
		t.Error("WorldReadable helper wrong")
	}
}

func TestLstatMissing(t *testing.T) {
	fs := newFS()
	if _, err := fs.Lstat("/none"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Lstat missing = %v", err)
	}
}

func TestNowFuncDefaultsAndTimestamps(t *testing.T) {
	fs := New(nil) // nil clock defaults to zero
	if err := fs.MkdirAll("/d", Root, ModeDir); err != nil {
		t.Fatal(err)
	}
	now := time.Duration(0)
	fs2 := New(func() time.Duration { now += time.Second; return now })
	if err := fs2.MkdirAll("/d", Root, ModeDir); err != nil {
		t.Fatal(err)
	}
	if err := fs2.WriteFile("/d/f", []byte("x"), appA, ModeShared); err != nil {
		t.Fatal(err)
	}
	info, _ := fs2.Stat("/d/f")
	if info.ModTime == 0 {
		t.Error("mod time not stamped from the clock")
	}
}
