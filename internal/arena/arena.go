// Package arena pools booted devices so chaos sweeps and experiment fleets
// pay device.Boot once per worker: after the first boot every acquisition
// resets a pooled device in place (scheduler, filesystem tree, package
// manager, FUSE daemon, intent machinery, download manager, process table
// and market wiring), which is microseconds instead of a full rebuild.
//
// An Arena is not safe for concurrent use, matching the single-threaded
// simulation design (see internal/sim): deploy one arena per worker (see
// chaos.Explorer.WorkerState) so each worker always hits its own warm
// device.
package arena

import (
	"time"

	"github.com/ghost-installer/gia/internal/device"
	"github.com/ghost-installer/gia/internal/obs"
)

// Metrics are the arena's observability hooks. All fields are optional;
// nil hooks are free no-ops (the obs contract).
type Metrics struct {
	// Hits counts acquisitions served by resetting a pooled device.
	Hits *obs.Counter
	// Misses counts acquisitions that had to boot a fresh device.
	Misses *obs.Counter
	// Resets counts in-place resets performed (equals Hits unless a reset
	// fails and falls back to a boot).
	Resets *obs.Counter
	// ResetNS records wall-clock reset latency in nanoseconds.
	ResetNS *obs.Histogram
	// ResetFailures counts pooled devices dropped because their in-place
	// reset errored; each failure also books a miss for the fall-back boot.
	ResetFailures *obs.Counter
	// ResetFailureHook, when non-nil, fires with the reset error before
	// the fall-back boot — the fleet daemon uses it to trigger a
	// flight-recorder dump and a hub event while the poisoned device's
	// rings are still intact.
	ResetFailureHook func(err error)
	// Clock times resets for ResetNS; nil disables latency recording.
	Clock obs.Clock
}

// Instrument registers the arena metrics on reg under the arena.* names
// and binds a real stopwatch for reset latency.
func Instrument(reg *obs.Registry) Metrics {
	return Metrics{
		Hits:          reg.Counter("arena.hits"),
		Misses:        reg.Counter("arena.misses"),
		Resets:        reg.Counter("arena.resets"),
		ResetNS:       reg.Histogram("arena.reset_ns", obs.DurationBuckets()),
		ResetFailures: reg.Counter("arena.reset_failures"),
		Clock:         obs.Stopwatch(),
	}
}

// Arena is a pool of devices sharing one profile. The profile's Seed field
// is ignored: each Acquire stamps its own seed, and Reset makes the device
// indistinguishable from a fresh Boot under that seed (pinned by the
// devicetest equivalence harness).
type Arena struct {
	profile device.Profile
	free    []*device.Device
	met     Metrics
}

// New creates an empty arena for profile.
func New(profile device.Profile) *Arena {
	profile.Seed = 0
	return &Arena{profile: profile}
}

// SetMetrics installs observability hooks (typically from Instrument).
func (a *Arena) SetMetrics(m Metrics) { a.met = m }

// Profile returns the arena's profile (with a zero Seed).
func (a *Arena) Profile() device.Profile { return a.profile }

// Idle reports how many devices are pooled and ready for reuse.
func (a *Arena) Idle() int { return len(a.free) }

// Acquire returns a device booted from the arena's profile under seed: a
// pooled device reset in place when one is available, a fresh Boot
// otherwise. The caller owns the device until Release.
func (a *Arena) Acquire(seed int64) (*device.Device, error) {
	var d *device.Device
	if n := len(a.free); n > 0 {
		d = a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
	}
	if d != nil {
		var start time.Duration
		if a.met.Clock != nil {
			start = a.met.Clock()
		}
		err := d.Reset(seed)
		if err == nil {
			a.met.Hits.Inc()
			a.met.Resets.Inc()
			if a.met.Clock != nil {
				a.met.ResetNS.Observe(int64(a.met.Clock() - start))
			}
			return d, nil
		}
		// A failed reset poisons the pooled device: drop it and fall
		// through to a fresh boot.
		a.met.ResetFailures.Inc()
		if a.met.ResetFailureHook != nil {
			a.met.ResetFailureHook(err)
		}
	}
	a.met.Misses.Inc()
	prof := a.profile
	prof.Seed = seed
	return device.Boot(prof)
}

// Release returns a device to the pool. Only devices acquired from this
// arena (or booted from an identical profile) may be released into it; a
// nil device is ignored.
func (a *Arena) Release(d *device.Device) {
	if d == nil {
		return
	}
	a.free = append(a.free, d)
}
