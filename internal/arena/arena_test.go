package arena_test

import (
	"errors"
	"path"
	"testing"

	"github.com/ghost-installer/gia/internal/arena"
	"github.com/ghost-installer/gia/internal/device"
	"github.com/ghost-installer/gia/internal/dm"
	"github.com/ghost-installer/gia/internal/obs"
	"github.com/ghost-installer/gia/internal/vfs"
)

func testProfile() device.Profile {
	return device.Profile{Name: "galaxy-s6-verizon", Vendor: "samsung"}
}

// denyAll refuses every access under its mount, which makes the next
// device.Reset fail inside dm.Reset (the download-manager database
// directory becomes unwritable). Mounts survive vfs.Reset, so the poison
// persists across the in-place reset attempt — exactly the shape of a
// device whose state can no longer be scrubbed.
type denyAll struct{}

var errDenied = errors.New("denyAll: access denied")

func (denyAll) Check(*vfs.FS, vfs.Request) error { return errDenied }
func (denyAll) DeriveMode(_ *vfs.FS, _ string, _ vfs.UID, requested vfs.Mode) vfs.Mode {
	return requested
}

// A pooled device whose Reset fails must be dropped — never re-pooled —
// with the acquisition served by the fall-back Boot path, and the failure
// must be visible on the arena.reset_failures counter.
func TestFailedResetDropsDeviceAndBootsFresh(t *testing.T) {
	reg := obs.NewRegistry()
	a := arena.New(testProfile())
	a.SetMetrics(arena.Instrument(reg))

	poisoned, err := a.Acquire(11)
	if err != nil {
		t.Fatal(err)
	}
	// Poison: deny all access under the DM database directory. The mount
	// table is hardware configuration and survives FS.Reset, so the next
	// in-place reset cannot recreate the database and errors out.
	if err := poisoned.FS.Mount(path.Dir(dm.DBPath), denyAll{}, 0); err != nil {
		t.Fatal(err)
	}
	if err := poisoned.Reset(12); err == nil {
		t.Fatal("sanity: expected Reset to fail on the poisoned device")
	}
	a.Release(poisoned)

	fresh, err := a.Acquire(13)
	if err != nil {
		t.Fatalf("acquire after poisoned release: %v", err)
	}
	if fresh == poisoned {
		t.Fatal("arena returned the poisoned device instead of booting fresh")
	}
	if got := a.Idle(); got != 0 {
		t.Fatalf("poisoned device re-pooled: idle=%d, want 0", got)
	}
	// The fall-back boot produced a genuinely working device.
	if !fresh.DM.Healthy() {
		t.Fatal("fall-back boot produced an unhealthy device")
	}

	snap := reg.Snapshot()
	if got := snap.Counter("arena.reset_failures"); got != 1 {
		t.Fatalf("arena.reset_failures = %d, want 1", got)
	}
	if got := snap.Counter("arena.hits"); got != 0 {
		t.Fatalf("arena.hits = %d, want 0", got)
	}
	// Both the cold first acquire and the failed-reset fall-back boot book
	// misses.
	if got := snap.Counter("arena.misses"); got != 2 {
		t.Fatalf("arena.misses = %d, want 2", got)
	}
	if got := snap.Counter("arena.resets"); got != 0 {
		t.Fatalf("arena.resets = %d, want 0", got)
	}

	// The fresh device is clean: releasing and re-acquiring it is a
	// plain reset hit, so the pool recovers after the poisoned drop.
	a.Release(fresh)
	again, err := a.Acquire(14)
	if err != nil {
		t.Fatal(err)
	}
	if again != fresh {
		t.Fatal("expected the released fresh device to be reused")
	}
	snap = reg.Snapshot()
	if got := snap.Counter("arena.hits"); got != 1 {
		t.Fatalf("arena.hits after recovery = %d, want 1", got)
	}
	if got := snap.Counter("arena.reset_failures"); got != 1 {
		t.Fatalf("arena.reset_failures after recovery = %d, want 1", got)
	}
}

// Nil metrics hooks must stay free no-ops on every Acquire path, including
// the failed-reset fall-back.
func TestFailedResetWithoutMetrics(t *testing.T) {
	a := arena.New(testProfile())
	d, err := a.Acquire(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.FS.Mount(path.Dir(dm.DBPath), denyAll{}, 0); err != nil {
		t.Fatal(err)
	}
	a.Release(d)
	fresh, err := a.Acquire(2)
	if err != nil {
		t.Fatal(err)
	}
	if fresh == d {
		t.Fatal("poisoned device served from the pool")
	}
}
