package apk

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/ghost-installer/gia/internal/sig"
)

func sampleManifest() Manifest {
	return Manifest{
		Package:     "com.bank.app",
		VersionCode: 7,
		Label:       "Bank",
		Icon:        "icon-bank",
		UsesPerms:   []string{"android.permission.INTERNET"},
		DefinesPerms: []PermissionDef{
			{Name: "com.bank.app.permission.API", ProtectionLevel: "signature"},
		},
		Components: []Component{
			{Type: ComponentActivity, Name: "com.bank.app.Main", Exported: true},
			{Type: ComponentReceiver, Name: "com.bank.app.Push", Exported: true, GuardedBy: "com.bank.app.permission.API"},
		},
	}
}

func TestBuildEncodeDecodeRoundTrip(t *testing.T) {
	key := sig.NewKey("bank-dev")
	a := Build(sampleManifest(), map[string][]byte{"classes.dex": []byte("code")}, key)
	a.Padding = 128

	data := a.Encode()
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Manifest.Package != "com.bank.app" || got.Manifest.VersionCode != 7 {
		t.Errorf("manifest = %+v", got.Manifest)
	}
	if string(got.Files["classes.dex"]) != "code" {
		t.Errorf("files = %v", got.Files)
	}
	if got.Padding != 128 {
		t.Errorf("padding = %d", got.Padding)
	}
	if err := got.VerifySignature(); err != nil {
		t.Errorf("decoded signature invalid: %v", err)
	}
	if !got.Cert().Equal(key.Certificate()) {
		t.Error("certificate changed in round trip")
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	key := sig.NewKey("dev")
	data := Build(sampleManifest(), nil, key).Encode()

	for _, cut := range []int{1, eocdSize - 1, eocdSize, len(data) / 2} {
		if _, err := Decode(data[:len(data)-cut]); !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Errorf("cut %d bytes: err = %v, want truncated/corrupt", cut, err)
		}
	}
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("Decode(nil) = %v", err)
	}
}

func TestDecodeRejectsTamperedContent(t *testing.T) {
	key := sig.NewKey("dev")
	data := Build(sampleManifest(), map[string][]byte{"f": []byte("x")}, key).Encode()
	data[10] ^= 0xFF
	if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
		t.Errorf("tampered decode = %v, want ErrCorrupt", err)
	}
}

func TestHasEOCDOnlyAtCompleteTail(t *testing.T) {
	key := sig.NewKey("dev")
	data := Build(sampleManifest(), nil, key).Encode()
	if !HasEOCD(data) {
		t.Error("complete archive lacks EOCD")
	}
	if HasEOCD(data[:len(data)-1]) {
		t.Error("truncated archive reports EOCD")
	}
	if HasEOCD(data[:len(data)/2]) {
		t.Error("half archive reports EOCD")
	}
	if HasEOCD(nil) {
		t.Error("empty data reports EOCD")
	}
}

func TestVerifySignatureDetectsTampering(t *testing.T) {
	key := sig.NewKey("dev")
	a := Build(sampleManifest(), map[string][]byte{"f": []byte("x")}, key)
	if err := a.VerifySignature(); err != nil {
		t.Fatal(err)
	}
	a.Files["f"] = []byte("evil")
	if err := a.VerifySignature(); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered files verify = %v, want ErrBadSignature", err)
	}
	var unsigned APK
	unsigned.Manifest = sampleManifest()
	if err := unsigned.VerifySignature(); !errors.Is(err, ErrNotSigned) {
		t.Errorf("unsigned verify = %v, want ErrNotSigned", err)
	}
}

func TestRepackageKeepsManifestChangesSigner(t *testing.T) {
	dev := sig.NewKey("bank-dev")
	attacker := sig.NewKey("attacker")
	orig := Build(sampleManifest(), map[string][]byte{"classes.dex": []byte("legit")}, dev)

	evil := Repackage(orig, map[string][]byte{"classes.dex": []byte("malware")}, attacker, false)

	if evil.Manifest.Digest() != orig.Manifest.Digest() {
		t.Error("repackaging changed the manifest digest — PIA verification would catch it")
	}
	if evil.Cert().Equal(orig.Cert()) {
		t.Error("repackaged APK kept the original certificate")
	}
	if err := evil.VerifySignature(); err != nil {
		t.Errorf("repackaged APK signature invalid: %v", err)
	}
	if string(evil.Files["classes.dex"]) != "malware" {
		t.Errorf("payload = %q", evil.Files["classes.dex"])
	}
	// The content digest differs, which is what hash re-verification
	// right before install (Suggestion 2) would detect.
	if ContentDigest(evil.Encode()) == ContentDigest(orig.Encode()) {
		t.Error("repackaged content digest unchanged")
	}
}

func TestDRMSelfCheck(t *testing.T) {
	dev := sig.NewKey("amazon")
	attacker := sig.NewKey("attacker")
	orig := WithDRM(Build(sampleManifest(), map[string][]byte{"classes.dex": []byte("x")}, dev), dev)

	if !orig.DRMSelfCheck() {
		t.Error("genuine app failed its own DRM self-check")
	}

	// Repackaging while keeping DRM: the self-check fails (wrong signer).
	kept := Repackage(orig, map[string][]byte{"classes.dex": []byte("evil")}, attacker, false)
	if kept.DRMSelfCheck() {
		t.Error("repackaged app with retained DRM passed the self-check")
	}

	// Repackaging and stripping DRM (the paper's attack): check passes
	// trivially because the self-check code is gone.
	stripped := Repackage(orig, map[string][]byte{"classes.dex": []byte("evil")}, attacker, true)
	if !stripped.DRMSelfCheck() {
		t.Error("DRM-stripped repackage failed the (absent) self-check")
	}
	if _, ok := stripped.Files[DRMEntryName]; ok {
		t.Error("DRM entry survived stripping")
	}
}

func TestManifestQueries(t *testing.T) {
	m := sampleManifest()
	if !m.Uses("android.permission.INTERNET") {
		t.Error("Uses missed a declared permission")
	}
	if m.Uses("android.permission.CAMERA") {
		t.Error("Uses reported an undeclared permission")
	}
	if def, ok := m.Defines("com.bank.app.permission.API"); !ok || def.ProtectionLevel != "signature" {
		t.Errorf("Defines = %+v, %v", def, ok)
	}
	if _, ok := m.Defines("nope"); ok {
		t.Error("Defines reported an undeclared permission")
	}
	if c, ok := m.Component("com.bank.app.Push"); !ok || c.Type != ComponentReceiver {
		t.Errorf("Component = %+v, %v", c, ok)
	}
	if _, ok := m.Component("nope"); ok {
		t.Error("Component reported an undeclared component")
	}
}

func TestPaddingGrowsEncodedSize(t *testing.T) {
	key := sig.NewKey("dev")
	small := Build(sampleManifest(), nil, key)
	big := Build(sampleManifest(), nil, key)
	big.Padding = 4096
	// The padding field itself adds a few JSON bytes, so the growth is at
	// least the padding amount.
	if big.Size() < small.Size()+4096 {
		t.Errorf("sizes: big %d, small %d", big.Size(), small.Size())
	}
	decoded, err := Decode(big.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := decoded.VerifySignature(); err != nil {
		t.Errorf("padded APK signature: %v", err)
	}
}

// Property: encode/decode round-trips arbitrary file contents and the
// signature still verifies.
func TestPropertyEncodeDecodeRoundTrip(t *testing.T) {
	key := sig.NewKey("dev")
	f := func(name string, content []byte, version uint8) bool {
		if name == "" {
			name = "f"
		}
		m := Manifest{Package: "com.p", VersionCode: int(version), Label: "P"}
		a := Build(m, map[string][]byte{name: content}, key)
		got, err := Decode(a.Encode())
		if err != nil {
			return false
		}
		if string(got.Files[name]) != string(content) {
			return false
		}
		return got.VerifySignature() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Decode and HasEOCD never panic and Decode never succeeds on
// arbitrary garbage (robustness of the parser the PMS and DAPP rely on).
func TestPropertyDecodeRobustOnGarbage(t *testing.T) {
	f := func(data []byte) bool {
		_ = HasEOCD(data)
		a, err := Decode(data)
		// Arbitrary bytes must not produce a *validly signed* APK.
		if err == nil && a.VerifySignature() == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: flipping any single byte of a valid archive either fails
// decoding or fails signature verification — never both succeed.
func TestPropertySingleByteFlipDetected(t *testing.T) {
	key := sig.NewKey("dev")
	orig := Build(sampleManifest(), map[string][]byte{"f": []byte("payload")}, key).Encode()
	f := func(pos uint16, delta uint8) bool {
		if delta == 0 {
			return true
		}
		data := append([]byte(nil), orig...)
		data[int(pos)%len(data)] ^= delta
		a, err := Decode(data)
		if err != nil {
			return true
		}
		return a.VerifySignature() != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: every strict prefix of an encoded APK lacks a valid EOCD.
func TestPropertyPrefixNeverHasEOCD(t *testing.T) {
	key := sig.NewKey("dev")
	data := Build(sampleManifest(), map[string][]byte{"f": []byte("payload")}, key).Encode()
	f := func(cut uint16) bool {
		n := int(cut)%len(data) + 1 // 1..len
		return !HasEOCD(data[:len(data)-n])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
