// Package apk models Android application packages: a ZIP-like archive with
// an AndroidManifest, file entries, a signature block and an
// End-Of-Central-Directory (EOCD) record at the very end of the byte stream.
//
// The EOCD's position matters: the wait-and-see attacker of Section III-B
// detects download completion by polling the tail of the file for it. The
// manifest digest matters separately from the full-content digest because
// installPackageWithVerification and the PackageInstallerActivity verify
// only the manifest — the weakness Section III-B's "Attack on PIA" defeats
// by repackaging with an unchanged manifest.
package apk

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/ghost-installer/gia/internal/sig"
)

// Component types that appear in a manifest.
const (
	ComponentActivity = "activity"
	ComponentReceiver = "receiver"
	ComponentService  = "service"
)

// Errors returned when parsing or validating APKs.
var (
	ErrTruncated    = errors.New("apk: truncated archive (no EOCD record)")
	ErrCorrupt      = errors.New("apk: corrupt archive")
	ErrNotSigned    = errors.New("apk: archive is not signed")
	ErrBadSignature = errors.New("apk: signature verification failed")
)

// eocdMagic mirrors ZIP's end-of-central-directory signature PK\x05\x06.
var eocdMagic = []byte{0x50, 0x4B, 0x05, 0x06}

// eocdSize is magic + 8-byte payload length + full-content digest.
const eocdSize = 4 + 8 + sig.DigestSize

// PermissionDef is a permission declared by an app's manifest.
type PermissionDef struct {
	Name            string `json:"name"`
	ProtectionLevel string `json:"protectionLevel"` // normal|dangerous|signature|signatureOrSystem
}

// Component is an app component declared in the manifest.
type Component struct {
	Type      string `json:"type"` // activity|receiver|service
	Name      string `json:"name"`
	Exported  bool   `json:"exported"`
	GuardedBy string `json:"guardedBy,omitempty"` // permission required of senders
}

// Manifest is the AndroidManifest.xml equivalent.
type Manifest struct {
	Package      string          `json:"package"`
	VersionCode  int             `json:"versionCode"`
	Label        string          `json:"label"`
	Icon         string          `json:"icon"`
	SharedUserID string          `json:"sharedUserId,omitempty"`
	UsesPerms    []string        `json:"usesPermissions,omitempty"`
	DefinesPerms []PermissionDef `json:"definesPermissions,omitempty"`
	Components   []Component     `json:"components,omitempty"`
}

// Uses reports whether the manifest requests the named permission.
func (m Manifest) Uses(perm string) bool {
	for _, p := range m.UsesPerms {
		if p == perm {
			return true
		}
	}
	return false
}

// Defines returns the definition of the named permission, if declared.
func (m Manifest) Defines(perm string) (PermissionDef, bool) {
	for _, d := range m.DefinesPerms {
		if d.Name == perm {
			return d, true
		}
	}
	return PermissionDef{}, false
}

// Component returns the named component, if declared.
func (m Manifest) Component(name string) (Component, bool) {
	for _, c := range m.Components {
		if c.Name == name {
			return c, true
		}
	}
	return Component{}, false
}

// Digest hashes the canonical (JSON) encoding of the manifest. This is the
// value installPackageWithVerification and the PIA check.
func (m Manifest) Digest() sig.Digest {
	data, err := json.Marshal(m)
	if err != nil {
		// Manifest contains only marshalable types; this cannot happen.
		panic(fmt.Sprintf("apk: marshal manifest: %v", err))
	}
	return sig.Sum(data)
}

// APK is a parsed application package. Manifest, Files and Padding may be
// adjusted freely after Build or Decode — but not once Encode (or Size) has
// been called: the encoding is memoized on first use, because scenario
// fixtures encode the same artifact for every device of a sweep.
type APK struct {
	Manifest  Manifest
	Files     map[string][]byte
	Signature sig.Signature
	Padding   int // extra bytes appended before the EOCD to reach a target size

	encodeOnce sync.Once
	encoded    []byte
	digestOnce sync.Once
	digest     sig.Digest
	verified   atomic.Bool
}

// payload is the serialized body of the archive. File contents round-trip
// through JSON's native []byte base64 encoding so arbitrary bytes survive.
type payload struct {
	Manifest  Manifest          `json:"manifest"`
	Files     map[string][]byte `json:"files,omitempty"`
	Signature sig.Signature     `json:"signature"`
	Padding   int               `json:"padding,omitempty"`
}

// Build assembles and signs an APK. Files may be nil.
func Build(m Manifest, files map[string][]byte, key *sig.Key) *APK {
	a := &APK{Manifest: m, Files: cloneFiles(files)}
	a.Signature = key.Sign(a.signingDigest())
	return a
}

// signingDigest covers the manifest and every file entry, in name order.
func (a *APK) signingDigest() sig.Digest {
	var buf bytes.Buffer
	md := a.Manifest.Digest()
	buf.Write(md[:])
	names := make([]string, 0, len(a.Files))
	for name := range a.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		buf.WriteString(name)
		buf.Write(a.Files[name])
	}
	return sig.Sum(buf.Bytes())
}

// VerifySignature checks the embedded signature block against the archive
// content. A repackaged APK signed by a different key still verifies — but
// under the repackager's certificate, which is what signature-continuity
// checks in the PackageManager catch.
func (a *APK) VerifySignature() error {
	if a.Signature.IsZero() {
		return ErrNotSigned
	}
	if !sig.Verify(a.Signature, a.signingDigest()) {
		return ErrBadSignature
	}
	return nil
}

// VerifySignatureShared is VerifySignature for archives that are shared and
// immutable — decode-cache results and memoized scenario fixtures: a
// successful check is memoized so repeated installs of the same image skip
// the digest recomputation. Archives whose Files may still be mutated must
// use VerifySignature, which always recomputes.
func (a *APK) VerifySignatureShared() error {
	if a.verified.Load() {
		return nil
	}
	if err := a.VerifySignature(); err != nil {
		return err
	}
	a.verified.Store(true)
	return nil
}

// Cert returns the signer's certificate.
func (a *APK) Cert() sig.Certificate { return a.Signature.Cert }

// ManifestDigest returns the manifest-only digest.
func (a *APK) ManifestDigest() sig.Digest { return a.Manifest.Digest() }

// Encode serializes the APK. The EOCD record — magic, payload length and
// full-content digest — is the final eocdSize bytes of the output. The
// result is memoized (and must not be written to): an APK is immutable
// once encoded.
func (a *APK) Encode() []byte {
	a.encodeOnce.Do(func() { a.encoded = a.encode() })
	return a.encoded
}

// EncodedDigest returns ContentDigest(a.Encode()), memoized under the same
// immutability contract as Encode. Markets hash every listing they publish;
// a sweep republishes the same images once per schedule.
func (a *APK) EncodedDigest() sig.Digest {
	a.digestOnce.Do(func() { a.digest = ContentDigest(a.Encode()) })
	return a.digest
}

func (a *APK) encode() []byte {
	p := payload{
		Manifest:  a.Manifest,
		Signature: a.Signature,
		Padding:   a.Padding,
	}
	if len(a.Files) > 0 {
		p.Files = a.Files
	}
	body, err := json.Marshal(p)
	if err != nil {
		panic(fmt.Sprintf("apk: marshal payload: %v", err))
	}
	out := make([]byte, 0, len(body)+a.Padding+eocdSize)
	out = append(out, body...)
	out = append(out, make([]byte, a.Padding)...)
	digest := sig.Sum(out)
	out = append(out, eocdMagic...)
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(body)))
	out = append(out, lenBuf[:]...)
	out = append(out, digest[:]...)
	return out
}

// Size returns the encoded size in bytes.
func (a *APK) Size() int64 { return int64(len(a.Encode())) }

// decodeCache memoizes parsed archives by their verified full-content
// digest: every device of a sweep installs the same handful of staged
// images, and identical bytes decode to identical (immutable, shareable)
// APKs. The cap bounds memory on corpus-scale workloads; past it, decodes
// simply stop being cached.
var decodeCache struct {
	sync.Mutex
	m map[sig.Digest]*APK
}

const decodeCacheCap = 4096

// Decode parses an encoded APK, requiring a complete EOCD record. The
// returned APK may be shared with other callers that decoded the same
// bytes; treat it as immutable.
func Decode(data []byte) (*APK, error) {
	if !HasEOCD(data) {
		return nil, ErrTruncated
	}
	bodyLen := binary.BigEndian.Uint64(data[len(data)-eocdSize+4 : len(data)-eocdSize+12])
	if bodyLen > uint64(len(data)-eocdSize) {
		return nil, fmt.Errorf("declared body %d bytes in %d-byte archive: %w", bodyLen, len(data), ErrCorrupt)
	}
	var want sig.Digest
	copy(want[:], data[len(data)-sig.DigestSize:])
	// The digest check always runs: cache hits are keyed by what the bytes
	// actually hash to, never by what the EOCD claims.
	if got := sig.Sum(data[:len(data)-eocdSize]); got != want {
		return nil, fmt.Errorf("content digest mismatch: %w", ErrCorrupt)
	}
	decodeCache.Lock()
	cached := decodeCache.m[want]
	decodeCache.Unlock()
	if cached != nil {
		return cached, nil
	}
	var p payload
	if err := json.Unmarshal(data[:bodyLen], &p); err != nil {
		return nil, fmt.Errorf("parse payload: %w", ErrCorrupt)
	}
	a := &APK{Manifest: p.Manifest, Signature: p.Signature, Padding: p.Padding}
	if len(p.Files) > 0 {
		a.Files = p.Files
	}
	decodeCache.Lock()
	if decodeCache.m == nil {
		decodeCache.m = make(map[sig.Digest]*APK)
	}
	if len(decodeCache.m) < decodeCacheCap {
		decodeCache.m[want] = a
	}
	decodeCache.Unlock()
	return a, nil
}

// HasEOCD reports whether data ends with a complete EOCD record — the
// completion signal the wait-and-see attacker polls file tails for.
func HasEOCD(data []byte) bool {
	if len(data) < eocdSize {
		return false
	}
	return bytes.Equal(data[len(data)-eocdSize:len(data)-eocdSize+4], eocdMagic)
}

// ContentDigest hashes a full encoded archive — the hash installers verify
// after download.
func ContentDigest(encoded []byte) sig.Digest { return sig.Sum(encoded) }

// Repackage builds a new APK with the original's manifest (label, icon and
// package name intact — so consent dialogs and manifest-only verification
// look identical) but attacker-controlled files, signed by the attacker's
// key. If stripDRM is set, DRM self-check entries (drm/ prefix) are dropped,
// matching the Amazon appstore attack of Section III-B.
func Repackage(orig *APK, attackerFiles map[string][]byte, attackerKey *sig.Key, stripDRM bool) *APK {
	files := make(map[string][]byte, len(orig.Files)+len(attackerFiles))
	for name, data := range orig.Files {
		if stripDRM && isDRMEntry(name) {
			continue
		}
		files[name] = append([]byte(nil), data...)
	}
	for name, data := range attackerFiles {
		files[name] = append([]byte(nil), data...)
	}
	repacked := Build(orig.Manifest, files, attackerKey)
	repacked.Padding = orig.Padding
	return repacked
}

// DRMEntryName is the archive entry holding an app's DRM self-check data:
// the hex fingerprint of the certificate the app expects to be signed with.
const DRMEntryName = "drm/selfcheck"

// WithDRM returns a copy of the APK embedding a DRM self-check entry bound
// to its current signer, re-signed by key (which must be the same signer for
// the self-check to pass at runtime).
func WithDRM(a *APK, key *sig.Key) *APK {
	files := cloneFiles(a.Files)
	fp := key.Certificate().Fingerprint
	files[DRMEntryName] = []byte(fp.Hex())
	out := Build(a.Manifest, files, key)
	out.Padding = a.Padding
	return out
}

// DRMSelfCheck reports whether the APK's embedded DRM expectation matches
// its actual signer. Apps without a DRM entry pass trivially (no self-check
// to run); a repackaged app that kept the entry fails.
func (a *APK) DRMSelfCheck() bool {
	want, ok := a.Files[DRMEntryName]
	if !ok {
		return true
	}
	return string(want) == a.Signature.Cert.Fingerprint.Hex()
}

func isDRMEntry(name string) bool {
	return name == DRMEntryName || (len(name) > 4 && name[:4] == "drm/")
}

func cloneFiles(files map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(files))
	for name, data := range files {
		out[name] = append([]byte(nil), data...)
	}
	return out
}
