package pia

import (
	"errors"
	"testing"
	"time"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/perm"
	"github.com/ghost-installer/gia/internal/pm"
	"github.com/ghost-installer/gia/internal/sig"
	"github.com/ghost-installer/gia/internal/vfs"
)

const attacker vfs.UID = 10666

func setup(t *testing.T) (*Activity, *vfs.FS) {
	t.Helper()
	fs := vfs.New(func() time.Duration { return 0 })
	for _, dir := range []string{"/data/app", "/sdcard"} {
		if err := fs.MkdirAll(dir, vfs.Root, vfs.ModeDir); err != nil {
			t.Fatal(err)
		}
	}
	pms := pm.New(fs, perm.NewRegistry(), pm.Options{})
	return New(fs, pms), fs
}

func bankAPK(key *sig.Key) *apk.APK {
	return apk.Build(apk.Manifest{
		Package: "com.bank", VersionCode: 3, Label: "MyBank", Icon: "bank-icon",
		UsesPerms: []string{perm.Internet},
	}, map[string][]byte{"classes.dex": []byte("legit")}, key)
}

func TestConsentFlowInstalls(t *testing.T) {
	act, fs := setup(t)
	dev := sig.NewKey("bank-dev")
	if err := fs.WriteFile("/sdcard/bank.apk", bankAPK(dev).Encode(), vfs.Root, vfs.ModeShared); err != nil {
		t.Fatal(err)
	}
	sess, err := act.Begin("/sdcard/bank.apk")
	if err != nil {
		t.Fatal(err)
	}
	pr := sess.Prompt()
	if pr.Package != "com.bank" || pr.Label != "MyBank" || pr.Icon != "bank-icon" {
		t.Errorf("prompt = %+v", pr)
	}
	if len(pr.Permissions) != 1 || pr.Permissions[0] != perm.Internet {
		t.Errorf("permissions = %v", pr.Permissions)
	}
	p, err := sess.Approve()
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "com.bank" || !p.Cert.Equal(dev.Certificate()) {
		t.Errorf("installed = %+v", p)
	}
	// Session is single-use.
	if _, err := sess.Approve(); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("second approve = %v", err)
	}
}

func TestDeny(t *testing.T) {
	act, fs := setup(t)
	if err := fs.WriteFile("/sdcard/bank.apk", bankAPK(sig.NewKey("d")).Encode(), vfs.Root, vfs.ModeShared); err != nil {
		t.Fatal(err)
	}
	sess, err := act.Begin("/sdcard/bank.apk")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Deny(); !errors.Is(err, ErrDenied) {
		t.Errorf("Deny = %v", err)
	}
	if _, err := sess.Approve(); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("approve after deny = %v", err)
	}
}

func TestManifestSwapDuringDialogDetected(t *testing.T) {
	act, fs := setup(t)
	if err := fs.WriteFile("/sdcard/bank.apk", bankAPK(sig.NewKey("d")).Encode(), vfs.Root, vfs.ModeShared); err != nil {
		t.Fatal(err)
	}
	sess, err := act.Begin("/sdcard/bank.apk")
	if err != nil {
		t.Fatal(err)
	}
	// A crude swap with a *different* manifest is what the manifest
	// checksum was designed to catch — and it does.
	other := apk.Build(apk.Manifest{Package: "com.evil", VersionCode: 1, Label: "Evil"}, nil, sig.NewKey("attacker"))
	if err := fs.WriteFile("/sdcard/bank.apk", other.Encode(), attacker, vfs.ModeShared); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Approve(); !errors.Is(err, ErrManifestChanged) {
		t.Errorf("crude swap approve = %v, want ErrManifestChanged", err)
	}
}

func TestSameManifestRepackageDefeatsPIA(t *testing.T) {
	act, fs := setup(t)
	dev := sig.NewKey("bank-dev")
	orig := bankAPK(dev)
	if err := fs.WriteFile("/sdcard/bank.apk", orig.Encode(), vfs.Root, vfs.ModeShared); err != nil {
		t.Fatal(err)
	}
	sess, err := act.Begin("/sdcard/bank.apk")
	if err != nil {
		t.Fatal(err)
	}
	// While the consent dialog is showing, the attacker substitutes a
	// phishing build: same manifest (name, label, icon), new payload and
	// signer. The PIA's manifest check passes — the Section III-B result.
	attackerKey := sig.NewKey("attacker")
	evil := apk.Repackage(orig, map[string][]byte{"classes.dex": []byte("phish")}, attackerKey, false)
	if err := fs.WriteFile("/sdcard/bank.apk", evil.Encode(), attacker, vfs.ModeShared); err != nil {
		t.Fatal(err)
	}
	p, err := sess.Approve()
	if err != nil {
		t.Fatalf("same-manifest swap rejected: %v — the modelled PIA must accept it", err)
	}
	if !p.Cert.Equal(attackerKey.Certificate()) {
		t.Error("installed package is not the attacker's build")
	}
	if string(p.Image().Files["classes.dex"]) != "phish" {
		t.Errorf("installed payload = %q", p.Image().Files["classes.dex"])
	}
}

func TestDenyThenFreshSessionWorks(t *testing.T) {
	act, fs := setup(t)
	if err := fs.WriteFile("/sdcard/bank.apk", bankAPK(sig.NewKey("d")).Encode(), vfs.Root, vfs.ModeShared); err != nil {
		t.Fatal(err)
	}
	sess, err := act.Begin("/sdcard/bank.apk")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Deny(); !errors.Is(err, ErrDenied) {
		t.Fatal(err)
	}
	// The user changes their mind: a fresh session installs fine.
	sess2, err := act.Begin("/sdcard/bank.apk")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess2.Approve(); err != nil {
		t.Fatalf("fresh session approve: %v", err)
	}
}

func TestBeginRejectsUnreadableInternalStaging(t *testing.T) {
	act, fs := setup(t)
	owner := vfs.UID(10030)
	if err := fs.MkdirAll("/data/data/com.app/files", owner, vfs.ModeDir); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/data/data/com.app/files/a.apk",
		bankAPK(sig.NewKey("d")).Encode(), owner, vfs.ModePrivate); err != nil {
		t.Fatal(err)
	}
	if _, err := act.Begin("/data/data/com.app/files/a.apk"); !errors.Is(err, pm.ErrUnreadableAPK) {
		t.Errorf("Begin on private internal staging = %v, want ErrUnreadableAPK", err)
	}
}

func TestBeginFailsOnMissingOrCorrupt(t *testing.T) {
	act, fs := setup(t)
	if _, err := act.Begin("/sdcard/nope.apk"); err == nil {
		t.Error("Begin on missing file succeeded")
	}
	data := bankAPK(sig.NewKey("d")).Encode()
	if err := fs.WriteFile("/sdcard/trunc.apk", data[:len(data)/2], vfs.Root, vfs.ModeShared); err != nil {
		t.Fatal(err)
	}
	if _, err := act.Begin("/sdcard/trunc.apk"); err == nil {
		t.Error("Begin on truncated file succeeded")
	}
}
