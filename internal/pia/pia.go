// Package pia models the PackageInstallerActivity — the consent-dialog
// install path used by apps without the INSTALL_PACKAGES permission
// (AIT Step 4 for side-loaded installers).
//
// The PIA records a checksum of the staged APK's *manifest* before showing
// the consent dialog and verifies it again before handing the file to the
// PMS. The paper shows this defense fails twice over: the attacker can swap
// the file in the Step-3 window before the PIA ever reads it, and even
// inside Step 4 a same-manifest repackage (e.g. a phishing version of a
// bank app) passes the manifest check while carrying a different payload
// and signer.
package pia

import (
	"errors"
	"fmt"

	"github.com/ghost-installer/gia/internal/pm"
	"github.com/ghost-installer/gia/internal/sig"
	"github.com/ghost-installer/gia/internal/vfs"
)

// Errors returned by PIA sessions.
var (
	ErrManifestChanged = errors.New("pia: staged apk manifest changed while the consent dialog was showing")
	ErrSessionClosed   = errors.New("pia: session already decided")
	ErrDenied          = errors.New("pia: user denied the installation")
)

// Prompt is what the consent dialog shows the user. Every field comes from
// the staged APK itself, which is why an attacker-supplied APK embedding the
// original app's label and icon looks identical.
type Prompt struct {
	Package     string
	Label       string
	Icon        string
	VersionCode int
	Permissions []string
}

// Activity is the PackageInstallerActivity.
type Activity struct {
	fs  *vfs.FS
	pms *pm.Service
}

// New creates the activity over the device's filesystem and PMS.
func New(fs *vfs.FS, pms *pm.Service) *Activity {
	return &Activity{fs: fs, pms: pms}
}

// Session is one consent-dialog interaction. Between Begin and Approve the
// dialog is on screen; the wall-clock (virtual) time that passes there is
// the Step-4 race window.
type Session struct {
	act            *Activity
	path           string
	manifestDigest sig.Digest
	prompt         Prompt
	done           bool
}

// Begin reads the staged APK, records its manifest digest and returns the
// session plus the dialog contents.
func (a *Activity) Begin(stagedPath string) (*Session, error) {
	parsed, _, err := pm.ReadStaged(a.fs, stagedPath)
	if err != nil {
		return nil, fmt.Errorf("pia: %w", err)
	}
	m := parsed.Manifest
	return &Session{
		act:            a,
		path:           stagedPath,
		manifestDigest: parsed.ManifestDigest(),
		prompt: Prompt{
			Package:     m.Package,
			Label:       m.Label,
			Icon:        m.Icon,
			VersionCode: m.VersionCode,
			Permissions: append([]string(nil), m.UsesPerms...),
		},
	}, nil
}

// Prompt returns the dialog contents.
func (s *Session) Prompt() Prompt { return s.prompt }

// Approve is called when the user taps Install. The PIA re-reads the file,
// verifies that the manifest digest still matches the one recorded before
// the dialog, and installs.
func (s *Session) Approve() (*pm.Package, error) {
	if s.done {
		return nil, ErrSessionClosed
	}
	s.done = true
	parsed, _, err := pm.ReadStaged(s.act.fs, s.path)
	if err != nil {
		return nil, fmt.Errorf("pia: re-read: %w", err)
	}
	if parsed.ManifestDigest() != s.manifestDigest {
		return nil, fmt.Errorf("%s: %w", s.path, ErrManifestChanged)
	}
	// The PIA itself runs as system, so the PMS accepts the request.
	p, err := s.act.pms.InstallPackage(vfs.System, s.path)
	if err != nil {
		return nil, fmt.Errorf("pia: install: %w", err)
	}
	return p, nil
}

// Deny is called when the user dismisses the dialog.
func (s *Session) Deny() error {
	if s.done {
		return ErrSessionClosed
	}
	s.done = true
	return ErrDenied
}
