package sim

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentDrawsAreRaceFree pins the fix for the shared-*rand.Rand
// race: every random draw goes through the scheduler's mutex, so concurrent
// draws (and draws racing the event loop) are safe. Run with -race.
func TestConcurrentDrawsAreRaceFree(t *testing.T) {
	s := New(1)
	for i := 0; i < 64; i++ {
		s.At(time.Duration(i)*time.Millisecond, func() {
			_ = s.Uint32()
			_ = s.Float64()
		})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				_ = s.Uint32()
				_ = s.Int63n(10)
				_ = s.Uniform(time.Millisecond, time.Second)
			}
		}()
	}
	s.Run()
	wg.Wait()
}

// TestConcurrentSchedulingIsRaceFree hammers At/After/Cancel/Now from many
// goroutines while the event loop drains, covering the locked heap paths.
func TestConcurrentSchedulingIsRaceFree(t *testing.T) {
	s := New(2)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				timer := s.At(time.Duration(g*200+i)*time.Microsecond, func() {})
				if i%3 == 0 {
					timer.Cancel()
				}
				_ = s.Now()
				_ = s.Pending()
			}
		}()
	}
	wg.Wait()
	s.Run()
	if s.Pending() != 0 {
		t.Errorf("%d events left after Run", s.Pending())
	}
}
