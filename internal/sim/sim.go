// Package sim provides a deterministic discrete-event scheduler with a
// virtual clock. Every timing-sensitive component of the simulated Android
// device (downloads, verification reads, attacker reaction latency, race
// windows) is driven by one Scheduler, which makes every experiment in this
// repository reproducible from a seed.
package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ghost-installer/gia/internal/fault"
	"github.com/ghost-installer/gia/internal/obs"
)

// Metrics are the scheduler's observability hooks. Every field is
// optional; nil fields (and the zero Metrics) disable the corresponding
// stream at zero cost, so an uninstrumented scheduler stays on the PR-4
// allocation budgets.
type Metrics struct {
	// Scheduled counts events entering the queue (duplicates included).
	Scheduled *obs.Counter
	// Dispatched counts events actually fired.
	Dispatched *obs.Counter
	// Cancelled counts Timer.Cancel transitions.
	Cancelled *obs.Counter
	// Depth tracks the queue depth after every mutation.
	Depth *obs.Gauge
	// Track, when non-nil, receives a virtual-time instant per dispatched
	// event. The hook fires with the scheduler lock held, so it records via
	// InstantAt with the event's own deadline — never by reading Now.
	Track *obs.Track
}

// Scheduler is a virtual-time discrete-event scheduler. Events scheduled for
// the same instant fire in scheduling order (FIFO) unless an Arbiter is
// installed, which gives stable, deterministic traces.
//
// A Scheduler is safe for concurrent use, although the intended model is
// single-threaded: callbacks run on the goroutine that calls Run, Step or
// RunUntil, and may schedule further events.
//
// Internally, pending events live in a hierarchical timer wheel and fired
// events are recycled through a free list, so the steady-state hot path
// (schedule, dispatch, recycle) does not allocate. Timer handles carry a
// generation number so a handle that outlives its event cannot cancel the
// event's pooled successor.
type Scheduler struct {
	mu  sync.Mutex
	now time.Duration
	// nowA mirrors now so Now (the single hottest scheduler call: every
	// modTime stamp and event reads it) never contends on the lock.
	nowA     atomic.Int64
	seq      uint64
	q        eventQueue
	free     []*event
	rng      *rand.Rand
	arbiter  Arbiter
	tagged   TaggedArbiter
	injector fault.Injector
	met      Metrics
	// fpScratch is the reused footprint buffer handed to a TaggedArbiter,
	// so footprint-aware tie-breaking allocates nothing per dispatch.
	fpScratch []Footprint
	fpCheck   FootprintCheck
}

// Arbiter chooses which of n same-instant runnable events fires next,
// returning an index into their FIFO (scheduling) order. It is only
// consulted when n > 1; out-of-range returns clamp to the FIFO choice.
// The chaos explorer uses this hook to enumerate every permutation of a
// race window. Arbiters are called with the scheduler's internal lock held
// and must not call back into the scheduler.
type Arbiter func(n int) int

// New returns a Scheduler whose random source is seeded with seed. The same
// seed always yields the same event interleavings and random draws.
func New(seed int64) *Scheduler {
	s := &Scheduler{rng: rand.New(newFastSource(seed))}
	s.q = newWheelQueue(s.recycle)
	return s
}

// newHeapScheduler builds a Scheduler on the original binary-heap queue.
// It exists only for the differential tests (FuzzTimerWheel) that pin the
// wheel's dispatch order to the heap's.
func newHeapScheduler(seed int64) *Scheduler {
	s := &Scheduler{rng: rand.New(newFastSource(seed))}
	s.q = newHeapQueue(s.recycle)
	return s
}

// Reset rewinds the scheduler to its boot state with a fresh seed: clock at
// zero, queue empty (pending events are discarded), arbiter, fault injector
// and metrics hooks removed, and the random stream re-seeded so draws equal
// those of a brand-new New(seed) scheduler. Allocated queue and pool
// capacity is retained — this is the arena's microsecond-scale alternative
// to rebuilding the object graph.
func (s *Scheduler) Reset(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = 0
	s.nowA.Store(0)
	s.seq = 0
	s.q.reset()
	// rand.Rand.Seed reinitializes the underlying source in place (here
	// fastSource restores a cached state vector); the stream is
	// bit-identical to rand.New(rand.NewSource(seed)), which is what makes
	// a reset device's random draws equal a fresh boot's. Pinned by
	// TestFastSourceMatchesMathRand and TestResetRestoresRandomStream.
	s.rng.Seed(seed)
	s.arbiter = nil
	s.tagged = nil
	s.fpCheck = nil
	s.injector = nil
	s.met = Metrics{}
}

// SetArbiter installs (or, with nil, removes) the same-instant tie-break
// hook. Install it before driving the clock: switching arbiters mid-run
// still yields a valid execution, but not one a replay token can name.
func (s *Scheduler) SetArbiter(a Arbiter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.arbiter = a
	if a != nil {
		s.tagged = nil
	}
}

// SetFaultInjector installs (or, with nil, removes) the fault hook consulted
// whenever an event is scheduled (fault.SiteSimEvent): a fault plan can
// delay, duplicate or drop any event at a chosen virtual time.
func (s *Scheduler) SetFaultInjector(fi fault.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.injector = fi
}

// Instrument installs (or, with the zero Metrics, removes) the
// scheduler's observability hooks. Install before driving the clock.
func (s *Scheduler) Instrument(m Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met = m
}

// Now reports the current virtual time, measured from boot (zero).
func (s *Scheduler) Now() time.Duration {
	return time.Duration(s.nowA.Load())
}

// Pending reports how many events are queued (including cancelled events
// not yet swept from the queue).
func (s *Scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q.size()
}

// Fingerprint digests the scheduler's dynamic state — clock, sequence
// counter and the multiset of live pending (deadline, seq) pairs — in a
// representation-independent way: heap- and wheel-backed schedulers in the
// same logical state produce equal fingerprints. The devicetest harness
// compares these across fresh-boot and arena-reset devices.
func (s *Scheduler) Fingerprint() Fingerprint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return queueFingerprint(s.now, s.seq, s.q)
}

// Uint32 draws from the scheduler's seeded source under its lock.
// Components must draw all randomness through the scheduler to stay
// deterministic; the source itself is never handed out because *rand.Rand
// is not safe for concurrent draws.
func (s *Scheduler) Uint32() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Uint32()
}

// Int63n draws a uniform int64 in [0, n) from the seeded source.
func (s *Scheduler) Int63n(n int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Int63n(n)
}

// Float64 draws a uniform float64 in [0, 1) from the seeded source.
func (s *Scheduler) Float64() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Float64()
}

// Uniform draws a duration uniformly from [lo, hi]. It panics if hi < lo,
// which always indicates a programming error in a caller's timing model.
func (s *Scheduler) Uniform(lo, hi time.Duration) time.Duration {
	if hi < lo {
		panic(fmt.Sprintf("sim: invalid uniform range [%v, %v]", lo, hi))
	}
	if hi == lo {
		return lo
	}
	return lo + time.Duration(s.Int63n(int64(hi-lo)+1))
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t earlier than Now) clamps to the present: the event fires on the next
// Step. The returned Timer can cancel the event before it fires.
func (s *Scheduler) At(t time.Duration, fn func()) *Timer {
	ev, ok := s.schedule(t, fn, Footprint{})
	if !ok {
		// Dropped by a fault plan: never entered the queue; hand back an
		// inert handle whose Cancel is a no-op.
		return &Timer{s: s, at: t}
	}
	return &Timer{s: s, ev: ev, gen: ev.gen, at: ev.at}
}

// AtFn schedules fn to run at absolute virtual time t, without returning a
// cancellation handle. Internal call sites that never cancel use this: it
// keeps the steady-state hot path allocation-free (the event struct itself
// is pooled).
func (s *Scheduler) AtFn(t time.Duration, fn func()) {
	s.schedule(t, fn, Footprint{})
}

// schedule is the shared At/AtFn path: probe the fault injector, then
// enqueue. It reports the queued event, or ok=false when a fault plan
// dropped it.
func (s *Scheduler) schedule(t time.Duration, fn func(), fp Footprint) (*event, bool) {
	s.mu.Lock()
	fi := s.injector
	now := s.now
	s.mu.Unlock()
	if fi != nil {
		// The probe timestamp is the event's effective deadline, so plans
		// can window on when events would fire, not when they are made.
		deadline := t
		if deadline < now {
			deadline = now
		}
		switch act := fi.Probe(fault.SiteSimEvent, "", deadline); act.Kind {
		case fault.KindDelay:
			t += act.Delay
		case fault.KindDrop:
			return nil, false
		case fault.KindDuplicate:
			s.at(t+act.Delay, fn, fp)
		}
	}
	return s.at(t, fn, fp), true
}

// at is the enqueue step, without the fault probe (used for injected
// duplicates).
func (s *Scheduler) at(t time.Duration, fn func(), fp Footprint) *event {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t < s.now {
		t = s.now
	}
	ev := s.alloc()
	ev.at = t
	ev.seq = s.seq
	ev.fn = fn
	ev.fp = fp
	ev.cancelled = false
	s.seq++
	s.q.push(s.now, ev)
	s.met.Scheduled.Add(1)
	s.met.Depth.Set(int64(s.q.size()))
	return ev
}

// alloc takes an event from the free list, or makes one. Callers hold s.mu.
func (s *Scheduler) alloc() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle returns a fired or swept event to the free list. Bumping the
// generation invalidates any Timer still holding the event, so a stale
// Cancel cannot kill the event's next incarnation. Callers hold s.mu.
func (s *Scheduler) recycle(ev *event) {
	ev.fn = nil
	ev.fp = Footprint{}
	ev.gen++
	s.free = append(s.free, ev)
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	return s.At(s.Now()+d, fn)
}

// AfterFn schedules fn to run d after the current virtual time, without a
// cancellation handle (see AtFn).
func (s *Scheduler) AfterFn(d time.Duration, fn func()) {
	s.AtFn(s.Now()+d, fn)
}

// Step runs the earliest pending event, advancing the clock to its deadline.
// It reports whether an event ran.
func (s *Scheduler) Step() bool {
	s.mu.Lock()
	ev := s.popRunnable(maxDeadline)
	s.mu.Unlock()
	if ev == nil {
		return false
	}
	s.fire(ev)
	return true
}

// Run executes events until none remain. Callbacks may schedule more events;
// Run returns only once the queue drains.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with deadlines at or before t, then advances the
// clock to t even if the queue drained earlier.
func (s *Scheduler) RunUntil(t time.Duration) {
	for {
		s.mu.Lock()
		ev := s.popRunnable(t)
		if ev == nil {
			if s.now < t {
				s.now = t
				s.nowA.Store(int64(t))
			}
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		s.fire(ev)
	}
}

// fire runs one dispatched event's callback outside the lock, then recycles
// the event struct.
func (s *Scheduler) fire(ev *event) {
	fn := ev.fn
	fn()
	s.mu.Lock()
	s.recycle(ev)
	s.mu.Unlock()
}

// popRunnable pops the next non-cancelled event with deadline <= limit and
// advances the clock. With an arbiter installed, every runnable event
// sharing the earliest deadline is collected, the arbiter picks which
// fires, and the rest return to the queue with their scheduling order
// intact. Callers must hold s.mu.
func (s *Scheduler) popRunnable(limit time.Duration) *event {
	if s.arbiter == nil && s.tagged == nil {
		ev := s.q.pop(s.now, limit)
		if ev == nil {
			s.met.Depth.Set(int64(s.q.size()))
			return nil
		}
		s.now = ev.at
		s.nowA.Store(int64(ev.at))
		s.dispatched(ev)
		return ev
	}
	cands := s.q.popTies(s.now, limit)
	if len(cands) == 0 {
		s.met.Depth.Set(int64(s.q.size()))
		return nil
	}
	idx := 0
	if len(cands) > 1 {
		var pick int
		if s.tagged != nil {
			if cap(s.fpScratch) < len(cands) {
				s.fpScratch = make([]Footprint, len(cands))
			}
			fps := s.fpScratch[:len(cands)]
			for i, ev := range cands {
				fp := ev.fp
				if fp.Kind != FootOpaque && s.fpCheck != nil && !s.fpCheck(fp) {
					fp = Footprint{} // no longer provably confined: opaque
				}
				fps[i] = fp
			}
			pick = s.tagged(len(cands), fps)
		} else {
			pick = s.arbiter(len(cands))
		}
		if pick >= 0 && pick < len(cands) {
			idx = pick
		}
	}
	at := cands[idx].at
	s.now = at
	s.nowA.Store(int64(at))
	chosen := cands[idx]
	for i, ev := range cands {
		if i != idx {
			s.q.push(s.now, ev)
		}
	}
	s.dispatched(chosen)
	return chosen
}

// dispatched records one fired event. Callers hold s.mu, so the trace
// instant carries the event's own deadline instead of reading Now (which
// takes the same lock).
func (s *Scheduler) dispatched(ev *event) {
	s.met.Dispatched.Add(1)
	s.met.Depth.Set(int64(s.q.size()))
	if s.met.Track != nil {
		s.met.Track.InstantAt(ev.at, "dispatch", "")
	}
}

// Timer is a handle to a scheduled event. The handle pins the event's
// deadline and generation at creation, so it stays valid (and harmless)
// after the event fires and its struct is recycled for a later event.
type Timer struct {
	s   *Scheduler
	ev  *event
	gen uint64
	at  time.Duration
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op.
func (t *Timer) Cancel() {
	if t.ev == nil {
		return // fault-dropped at scheduling time; nothing ever queued
	}
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if t.ev.gen != t.gen {
		return // the event fired and its struct moved on
	}
	if !t.ev.cancelled {
		t.ev.cancelled = true
		t.s.met.Cancelled.Add(1)
	}
}

// When reports the virtual time the event is (or was) scheduled for.
func (t *Timer) When() time.Duration { return t.at }

type event struct {
	at        time.Duration
	seq       uint64
	gen       uint64
	fn        func()
	fp        Footprint
	cancelled bool
}
