// Package sim provides a deterministic discrete-event scheduler with a
// virtual clock. Every timing-sensitive component of the simulated Android
// device (downloads, verification reads, attacker reaction latency, race
// windows) is driven by one Scheduler, which makes every experiment in this
// repository reproducible from a seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/ghost-installer/gia/internal/fault"
	"github.com/ghost-installer/gia/internal/obs"
)

// Metrics are the scheduler's observability hooks. Every field is
// optional; nil fields (and the zero Metrics) disable the corresponding
// stream at zero cost, so an uninstrumented scheduler stays on the PR-4
// allocation budgets.
type Metrics struct {
	// Scheduled counts events entering the queue (duplicates included).
	Scheduled *obs.Counter
	// Dispatched counts events actually fired.
	Dispatched *obs.Counter
	// Cancelled counts Timer.Cancel transitions.
	Cancelled *obs.Counter
	// Depth tracks the queue depth after every mutation.
	Depth *obs.Gauge
	// Track, when non-nil, receives a virtual-time instant per dispatched
	// event. The hook fires with the scheduler lock held, so it records via
	// InstantAt with the event's own deadline — never by reading Now.
	Track *obs.Track
}

// Scheduler is a virtual-time discrete-event scheduler. Events scheduled for
// the same instant fire in scheduling order (FIFO) unless an Arbiter is
// installed, which gives stable, deterministic traces.
//
// A Scheduler is safe for concurrent use, although the intended model is
// single-threaded: callbacks run on the goroutine that calls Run, Step or
// RunUntil, and may schedule further events.
type Scheduler struct {
	mu       sync.Mutex
	now      time.Duration
	seq      uint64
	events   eventHeap
	rng      *rand.Rand
	arbiter  Arbiter
	injector fault.Injector
	met      Metrics
	running  bool
}

// Arbiter chooses which of n same-instant runnable events fires next,
// returning an index into their FIFO (scheduling) order. It is only
// consulted when n > 1; out-of-range returns clamp to the FIFO choice.
// The chaos explorer uses this hook to enumerate every permutation of a
// race window. Arbiters are called with the scheduler's internal lock held
// and must not call back into the scheduler.
type Arbiter func(n int) int

// New returns a Scheduler whose random source is seeded with seed. The same
// seed always yields the same event interleavings and random draws.
func New(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// SetArbiter installs (or, with nil, removes) the same-instant tie-break
// hook. Install it before driving the clock: switching arbiters mid-run
// still yields a valid execution, but not one a replay token can name.
func (s *Scheduler) SetArbiter(a Arbiter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.arbiter = a
}

// SetFaultInjector installs (or, with nil, removes) the fault hook consulted
// whenever an event is scheduled (fault.SiteSimEvent): a fault plan can
// delay, duplicate or drop any event at a chosen virtual time.
func (s *Scheduler) SetFaultInjector(fi fault.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.injector = fi
}

// Instrument installs (or, with the zero Metrics, removes) the
// scheduler's observability hooks. Install before driving the clock.
func (s *Scheduler) Instrument(m Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met = m
}

// Now reports the current virtual time, measured from boot (zero).
func (s *Scheduler) Now() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Pending reports how many events are queued.
func (s *Scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Uint32 draws from the scheduler's seeded source under its lock.
// Components must draw all randomness through the scheduler to stay
// deterministic; the source itself is never handed out because *rand.Rand
// is not safe for concurrent draws.
func (s *Scheduler) Uint32() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Uint32()
}

// Int63n draws a uniform int64 in [0, n) from the seeded source.
func (s *Scheduler) Int63n(n int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Int63n(n)
}

// Float64 draws a uniform float64 in [0, 1) from the seeded source.
func (s *Scheduler) Float64() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Float64()
}

// Uniform draws a duration uniformly from [lo, hi]. It panics if hi < lo,
// which always indicates a programming error in a caller's timing model.
func (s *Scheduler) Uniform(lo, hi time.Duration) time.Duration {
	if hi < lo {
		panic(fmt.Sprintf("sim: invalid uniform range [%v, %v]", lo, hi))
	}
	if hi == lo {
		return lo
	}
	return lo + time.Duration(s.Int63n(int64(hi-lo)+1))
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t earlier than Now) clamps to the present: the event fires on the next
// Step. The returned Timer can cancel the event before it fires.
func (s *Scheduler) At(t time.Duration, fn func()) *Timer {
	s.mu.Lock()
	fi := s.injector
	now := s.now
	s.mu.Unlock()
	if fi != nil {
		// The probe timestamp is the event's effective deadline, so plans
		// can window on when events would fire, not when they are made.
		deadline := t
		if deadline < now {
			deadline = now
		}
		switch act := fi.Probe(fault.SiteSimEvent, "", deadline); act.Kind {
		case fault.KindDelay:
			t += act.Delay
		case fault.KindDrop:
			// Never enters the heap; Cancel stays a harmless no-op.
			return &Timer{s: s, ev: &event{at: t, fn: fn, cancelled: true}}
		case fault.KindDuplicate:
			s.at(t+act.Delay, fn)
		}
	}
	return s.at(t, fn)
}

// at is At without the fault probe (used for injected duplicates).
func (s *Scheduler) at(t time.Duration, fn func()) *Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t < s.now {
		t = s.now
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	s.met.Scheduled.Add(1)
	s.met.Depth.Set(int64(len(s.events)))
	return &Timer{s: s, ev: ev}
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	s.mu.Lock()
	now := s.now
	s.mu.Unlock()
	return s.At(now+d, fn)
}

// Step runs the earliest pending event, advancing the clock to its deadline.
// It reports whether an event ran.
func (s *Scheduler) Step() bool {
	s.mu.Lock()
	ev := s.popRunnable()
	s.mu.Unlock()
	if ev == nil {
		return false
	}
	ev.fn()
	return true
}

// Run executes events until none remain. Callbacks may schedule more events;
// Run returns only once the queue drains.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with deadlines at or before t, then advances the
// clock to t even if the queue drained earlier.
func (s *Scheduler) RunUntil(t time.Duration) {
	for {
		s.mu.Lock()
		if len(s.events) == 0 || s.events[0].at > t {
			if s.now < t {
				s.now = t
			}
			s.mu.Unlock()
			return
		}
		ev := s.popRunnable()
		s.mu.Unlock()
		if ev != nil {
			ev.fn()
		}
	}
}

// popRunnable pops the next non-cancelled event and advances the clock.
// With an arbiter installed, every runnable event sharing the earliest
// deadline is collected, the arbiter picks which fires, and the rest return
// to the queue with their scheduling order intact. Callers must hold s.mu.
func (s *Scheduler) popRunnable() *event {
	for len(s.events) > 0 && s.events[0].cancelled {
		heap.Pop(&s.events)
	}
	if len(s.events) == 0 {
		s.met.Depth.Set(0)
		return nil
	}
	if s.arbiter == nil {
		ev := s.popEvent()
		s.now = ev.at
		s.dispatched(ev)
		return ev
	}
	at := s.events[0].at
	var cands []*event
	for len(s.events) > 0 && s.events[0].at == at {
		if ev := s.popEvent(); !ev.cancelled {
			cands = append(cands, ev)
		}
	}
	idx := 0
	if len(cands) > 1 {
		if i := s.arbiter(len(cands)); i >= 0 && i < len(cands) {
			idx = i
		}
	}
	for i, ev := range cands {
		if i != idx {
			heap.Push(&s.events, ev)
		}
	}
	s.now = at
	s.dispatched(cands[idx])
	return cands[idx]
}

// dispatched records one fired event. Callers hold s.mu, so the trace
// instant carries the event's own deadline instead of reading Now (which
// takes the same lock).
func (s *Scheduler) dispatched(ev *event) {
	s.met.Dispatched.Add(1)
	s.met.Depth.Set(int64(len(s.events)))
	if s.met.Track != nil {
		s.met.Track.InstantAt(ev.at, "dispatch", "")
	}
}

func (s *Scheduler) popEvent() *event {
	ev, ok := heap.Pop(&s.events).(*event)
	if !ok {
		panic("sim: event heap holds a non-event")
	}
	return ev
}

// Timer is a handle to a scheduled event.
type Timer struct {
	s  *Scheduler
	ev *event
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op.
func (t *Timer) Cancel() {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if !t.ev.cancelled {
		t.ev.cancelled = true
		t.s.met.Cancelled.Add(1)
	}
}

// When reports the virtual time the event is (or was) scheduled for.
func (t *Timer) When() time.Duration { return t.ev.at }

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	index     int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		panic("sim: pushing a non-event")
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
