// Package sim provides a deterministic discrete-event scheduler with a
// virtual clock. Every timing-sensitive component of the simulated Android
// device (downloads, verification reads, attacker reaction latency, race
// windows) is driven by one Scheduler, which makes every experiment in this
// repository reproducible from a seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Scheduler is a virtual-time discrete-event scheduler. Events scheduled for
// the same instant fire in scheduling order (FIFO), which gives stable,
// deterministic traces.
//
// A Scheduler is safe for concurrent use, although the intended model is
// single-threaded: callbacks run on the goroutine that calls Run, Step or
// RunUntil, and may schedule further events.
type Scheduler struct {
	mu      sync.Mutex
	now     time.Duration
	seq     uint64
	events  eventHeap
	rng     *rand.Rand
	running bool
}

// New returns a Scheduler whose random source is seeded with seed. The same
// seed always yields the same event interleavings and random draws.
func New(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current virtual time, measured from boot (zero).
func (s *Scheduler) Now() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Pending reports how many events are queued.
func (s *Scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Rand returns the scheduler's seeded random source. Components must draw
// all randomness from this source to stay deterministic.
func (s *Scheduler) Rand() *rand.Rand {
	return s.rng
}

// Uniform draws a duration uniformly from [lo, hi]. It panics if hi < lo,
// which always indicates a programming error in a caller's timing model.
func (s *Scheduler) Uniform(lo, hi time.Duration) time.Duration {
	if hi < lo {
		panic(fmt.Sprintf("sim: invalid uniform range [%v, %v]", lo, hi))
	}
	if hi == lo {
		return lo
	}
	return lo + time.Duration(s.rng.Int63n(int64(hi-lo)+1))
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t earlier than Now) clamps to the present: the event fires on the next
// Step. The returned Timer can cancel the event before it fires.
func (s *Scheduler) At(t time.Duration, fn func()) *Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t < s.now {
		t = s.now
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return &Timer{s: s, ev: ev}
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	s.mu.Lock()
	now := s.now
	s.mu.Unlock()
	return s.At(now+d, fn)
}

// Step runs the earliest pending event, advancing the clock to its deadline.
// It reports whether an event ran.
func (s *Scheduler) Step() bool {
	s.mu.Lock()
	ev := s.popRunnable()
	s.mu.Unlock()
	if ev == nil {
		return false
	}
	ev.fn()
	return true
}

// Run executes events until none remain. Callbacks may schedule more events;
// Run returns only once the queue drains.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with deadlines at or before t, then advances the
// clock to t even if the queue drained earlier.
func (s *Scheduler) RunUntil(t time.Duration) {
	for {
		s.mu.Lock()
		if len(s.events) == 0 || s.events[0].at > t {
			if s.now < t {
				s.now = t
			}
			s.mu.Unlock()
			return
		}
		ev := s.popRunnable()
		s.mu.Unlock()
		if ev != nil {
			ev.fn()
		}
	}
}

// popRunnable pops the next non-cancelled event and advances the clock.
// Callers must hold s.mu.
func (s *Scheduler) popRunnable() *event {
	for len(s.events) > 0 {
		ev, ok := heap.Pop(&s.events).(*event)
		if !ok {
			panic("sim: event heap holds a non-event")
		}
		if ev.cancelled {
			continue
		}
		s.now = ev.at
		return ev
	}
	return nil
}

// Timer is a handle to a scheduled event.
type Timer struct {
	s  *Scheduler
	ev *event
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op.
func (t *Timer) Cancel() {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	t.ev.cancelled = true
}

// When reports the virtual time the event is (or was) scheduled for.
func (t *Timer) When() time.Duration { return t.ev.at }

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	index     int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		panic("sim: pushing a non-event")
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
