package sim

import "time"

// This file defines event footprints, the static effect summaries behind
// the chaos explorer's partial-order reduction. A footprint names the one
// resource domain a scheduled callback is allowed to touch; two same-instant
// events whose footprints are provably disjoint commute, so an exploration
// does not need to run both orders.
//
// Tagging contract. Scheduling an event through AtFnTagged/AfterFnTagged
// asserts BOTH of:
//
//  1. the callback's observable effects are confined to the footprint's
//     resource: for FootVFS that is one directory — creating, modifying or
//     removing direct children, reading the listing, and firing that
//     directory's (non-recursive, inotify-style) watchers — plus state
//     private to the callback's owner;
//  2. the callback schedules no follow-up event at the *same* virtual
//     instant, so a tie's candidate set can only shrink while it drains.
//
// Anything weaker must stay untagged: the zero Footprint is opaque and an
// opaque event is treated as conflicting with everything, which makes
// untagged workloads explore exactly as before. Sites that only sometimes
// satisfy the contract (a download's final chunk closes the file, rewrites
// the DM database and runs an arbitrary completion callback) tag the safe
// occurrences and leave the rest opaque.

// FootprintKind names a resource domain. Distinct kinds are disjoint state
// by construction, so events of different (non-opaque) kinds always
// commute; within a kind, the Key must differ.
type FootprintKind uint8

const (
	// FootOpaque is the zero value: effects unknown, conflicts with all.
	FootOpaque FootprintKind = iota
	// FootVFS scopes an event to one directory of the simulated
	// filesystem (see the tagging contract above). The Key is the clean
	// absolute path of that directory — the parent of the file touched,
	// because writes are observable through the parent's watch list.
	FootVFS
	// FootIntent scopes an event to one intent component (Key
	// "pkg/component"): its delivery state and nothing shared.
	FootIntent
	// FootProc scopes an event to one process table entry (Key pkg).
	FootProc
)

// Footprint is an event's effect summary: a resource domain plus the key
// of the single resource touched. The zero value is opaque.
type Footprint struct {
	Kind FootprintKind
	Key  string
}

// Opaque reports whether the footprint carries no commutation claim.
func (f Footprint) Opaque() bool { return f.Kind == FootOpaque }

// Independent reports whether two footprints provably commute: both carry
// a claim and they name different resources. Opaque footprints are never
// independent of anything, including each other.
func (f Footprint) Independent(g Footprint) bool {
	if f.Kind == FootOpaque || g.Kind == FootOpaque {
		return false
	}
	return f.Kind != g.Kind || f.Key != g.Key
}

// FootprintCheck revalidates one footprint at dispatch time, immediately
// before a tie is broken. Tagging happens when an event is scheduled, but
// some confinement conditions are only knowable when it is about to fire —
// a watcher may have been registered on a FootVFS directory in between, or
// a fault rule armed that would bounce the operation onto an error path
// with foreign effects. A false verdict demotes the event to opaque for
// this dispatch (disabling pruning at its tie) rather than risking an
// unsound reduction. Checks run with the scheduler lock held and must not
// call back into the scheduler.
type FootprintCheck func(Footprint) bool

// SetFootprintCheck installs (or, with nil, removes) the dispatch-time
// footprint validator. It is consulted only on the tagged-arbiter path, so
// plain runs never pay for it.
func (s *Scheduler) SetFootprintCheck(c FootprintCheck) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fpCheck = c
}

// TaggedArbiter is an Arbiter that also sees the candidates' footprints,
// indexed in the same FIFO order as the choice it returns. fps is a buffer
// owned by the scheduler, valid only for the duration of the call. Like
// Arbiter, it runs with the scheduler lock held and must not call back in.
type TaggedArbiter func(n int, fps []Footprint) int

// SetTaggedArbiter installs (or, with nil, removes) a footprint-aware
// tie-break hook. It replaces any plain Arbiter, and SetArbiter replaces
// it: a scheduler consults exactly one of the two.
func (s *Scheduler) SetTaggedArbiter(a TaggedArbiter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tagged = a
	if a != nil {
		s.arbiter = nil
	}
}

// AtFnTagged is AtFn with a footprint attached to the scheduled event (see
// the tagging contract above). Fault-injected duplicates inherit the
// footprint: a duplicate has the same effects as its original.
func (s *Scheduler) AtFnTagged(t time.Duration, fp Footprint, fn func()) {
	s.schedule(t, fn, fp)
}

// AfterFnTagged is AfterFn with a footprint attached.
func (s *Scheduler) AfterFnTagged(d time.Duration, fp Footprint, fn func()) {
	s.AtFnTagged(s.Now()+d, fp, fn)
}
