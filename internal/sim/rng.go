package sim

import (
	"math/rand"
	"sync"
)

// This file provides fastSource, a drop-in replacement for math/rand's
// additive lagged-Fibonacci source (Mitchell & Reeds) whose output stream
// is bit-identical — pinned by TestFastSourceMatchesMathRand — but whose
// Seed restores a cached state vector instead of re-running the ~1800-step
// seeding recurrence. Device arenas reseed one scheduler per acquisition,
// which made math/rand seeding the hottest flat cost of an exploration
// sweep; restoring a 607-word vector is a ~5 KiB copy.
//
// math/rand folds a precomputed "cooked" constant table into every seeded
// state. Rather than duplicating that table, calibrate() recovers it at
// first use from math/rand itself: the generator's feedback structure makes
// the pristine post-Seed state solvable from the first 607 outputs, and the
// seeding recurrence then yields the constants by XOR.

const (
	fsLen    = 607 // generator register length
	fsTap    = 273 // feedback tap offset
	fsMask   = 1<<63 - 1
	int32max = 1<<31 - 1

	// Multiplier of the Lehmer seeding recurrence.
	fsA = 48271
)

// fsSeedrand advances the seeding recurrence: x' = 48271·x mod (2³¹−1).
// math/rand uses Schrage's method (two 32-bit divisions) to stay in int32;
// with 64-bit arithmetic the Mersenne modulus reduces with a shift-and-add,
// which matters because seeding runs this 1841 times per fresh seed. The
// results are identical: both compute the exact product mod 2³¹−1.
func fsSeedrand(x int32) int32 {
	p := uint64(x) * fsA // < 2⁴⁷, so one folding step suffices
	x32 := uint32(p>>31) + uint32(p&int32max)
	if x32 >= int32max {
		x32 -= int32max
	}
	return int32(x32)
}

var calib struct {
	once   sync.Once
	cooked [fsLen]int64
	// pow[s] = 48271^s mod 2³¹−1. Seeding needs the Lehmer chain value at
	// 3·607 consecutive steps past the warmup; with the powers precomputed
	// each one is an independent mulmod of the normalized seed, so the CPU
	// pipelines them instead of waiting out an 1841-step dependency chain.
	pow [21 + 3*fsLen]int32
}

// fsMulMod returns a·b mod 2³¹−1 for 0 ≤ a, b < 2³¹−1.
func fsMulMod(a, b int32) int32 {
	p := uint64(a) * uint64(b) // < 2⁶²
	r := (p >> 31) + (p & int32max)
	r = (r >> 31) + (r & int32max)
	if r >= int32max {
		r -= int32max
	}
	return int32(r)
}

// calibrate recovers math/rand's cooked seeding constants from a reference
// source. After Seed, the first fsTap·2+… outputs are sums over the pristine
// state vector: out_k for k ≤ 273 adds two untouched entries, while later
// outputs add one untouched entry and one already-emitted value, so the
// whole vector falls out of two sequential passes. XORing the vector with
// the (re-runnable) seeding recurrence isolates the constants.
func calibrate() {
	const calibSeed = 1
	src := rand.NewSource(calibSeed).(rand.Source64)
	var out [fsLen + 1]int64
	for k := 1; k <= fsLen; k++ {
		out[k] = int64(src.Uint64())
	}
	// Pass 1 (k = 274..607): vec[feed_k] = out_k − out_{k−273}, since the
	// tap entry was overwritten by output k−273.
	var vec [fsLen]int64
	for k := 274; k <= fsLen; k++ {
		feed := 334 - k
		if feed < 0 {
			feed += fsLen
		}
		vec[feed] = out[k] - out[k-273]
	}
	// Pass 2 (k = 273..1): both entries pristine, and the tap entry
	// (index 607−k, in 334..606) was recovered by pass 1.
	for k := 273; k >= 1; k-- {
		vec[334-k] = out[k] - vec[fsLen-k]
	}
	// vec[i] = chain_i(seed) ^ cooked[i]  ⇒  cooked[i] = chain_i(seed) ^ vec[i].
	x := fsNormalize(calibSeed)
	for i := -20; i < fsLen; i++ {
		x = fsSeedrand(x)
		if i >= 0 {
			u := int64(x) << 40
			x = fsSeedrand(x)
			u ^= int64(x) << 20
			x = fsSeedrand(x)
			u ^= int64(x)
			calib.cooked[i] = u ^ vec[i]
		}
	}
	p := int32(1)
	for s := range calib.pow {
		calib.pow[s] = p
		p = fsSeedrand(p)
	}
}

// fsNormalize maps an int64 seed onto the recurrence's int32 domain the way
// rngSource.Seed does.
func fsNormalize(seed int64) int32 {
	seed = seed % int32max
	if seed < 0 {
		seed += int32max
	}
	if seed == 0 {
		seed = 89482311
	}
	return int32(seed)
}

// fastSource implements rand.Source64 with math/rand's exact stream.
//
// Seeding is lazy: a reseed only records the normalized seed, and each state
// vector entry is materialized the first time a draw touches it (three
// independent mulmods via calib.pow). A sweep reseeds one scheduler per
// schedule but typically draws a handful of values, so eager seeding — even
// the power-table kind — did ~60x more work than the draws consumed.
type fastSource struct {
	tap, feed int
	// lazy counts still-pristine vector entries; 0 means fully materialized
	// and the fill branch in Uint64 is skipped.
	lazy   int
	x0     int32
	filled [fsLen]bool
	vec    [fsLen]int64
}

func newFastSource(seed int64) *fastSource {
	s := &fastSource{}
	s.Seed(seed)
	return s
}

// Seed rewinds the source to the canonical post-seed state for seed.
func (s *fastSource) Seed(seed int64) {
	calib.once.Do(calibrate)
	s.tap = 0
	s.feed = fsLen - fsTap
	s.x0 = fsNormalize(seed)
	s.lazy = fsLen
	s.filled = [fsLen]bool{}
}

// ensure materializes vector entry i if it is still pristine:
// chain_s(seed) = 48271^s · seed mod 2³¹−1, three mulmods with no
// loop-carried dependency (see calib.pow).
func (s *fastSource) ensure(i int) {
	if s.filled[i] {
		return
	}
	s.filled[i] = true
	s.lazy--
	base := 21 + 3*i
	u := int64(fsMulMod(calib.pow[base], s.x0)) << 40
	u ^= int64(fsMulMod(calib.pow[base+1], s.x0)) << 20
	u ^= int64(fsMulMod(calib.pow[base+2], s.x0))
	s.vec[i] = u ^ calib.cooked[i]
}

func (s *fastSource) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += fsLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += fsLen
	}
	if s.lazy > 0 {
		s.ensure(s.tap)
		s.ensure(s.feed)
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

func (s *fastSource) Int63() int64 {
	return int64(s.Uint64() & fsMask)
}
