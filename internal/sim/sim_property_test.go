package sim

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

// Property: same-instant events fire in scheduling (FIFO) order, whatever
// the deadlines around them look like.
func TestPropertySameInstantFIFO(t *testing.T) {
	f := func(deadlines []uint8) bool {
		s := New(7)
		// Index events per deadline; FIFO demands firing order equals
		// scheduling order within each instant.
		firedAt := make(map[time.Duration][]int)
		for i, d := range deadlines {
			i := i
			at := time.Duration(d) * time.Microsecond
			s.At(at, func() { firedAt[at] = append(firedAt[at], i) })
		}
		s.Run()
		for _, order := range firedAt {
			for j := 1; j < len(order); j++ {
				if order[j] < order[j-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a cancelled timer never fires, and cancellation never disturbs
// the surviving events' order.
func TestPropertyCancelNeverFires(t *testing.T) {
	f := func(deadlines []uint8, cancelMask uint64) bool {
		s := New(3)
		fired := make(map[int]bool)
		var timers []*Timer
		for i, d := range deadlines {
			i := i
			timers = append(timers, s.At(time.Duration(d)*time.Microsecond, func() { fired[i] = true }))
		}
		cancelled := make(map[int]bool)
		for i := range timers {
			if cancelMask&(1<<(uint(i)%64)) != 0 {
				timers[i].Cancel()
				cancelled[i] = true
			}
		}
		s.Run()
		for i := range deadlines {
			if cancelled[i] && fired[i] {
				return false
			}
			if !cancelled[i] && !fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the virtual clock is monotone across any interleaving of
// scheduling styles (At, After, nested scheduling from callbacks).
func TestPropertyMonotoneClock(t *testing.T) {
	f := func(offsets []uint8) bool {
		s := New(11)
		monotone := true
		last := time.Duration(-1)
		observe := func() {
			now := s.Now()
			if now < last {
				monotone = false
			}
			last = now
		}
		for _, d := range offsets {
			d := time.Duration(d) * time.Microsecond
			s.After(d, func() {
				observe()
				// Nested events, including ones clamped to the present.
				s.After(d/2, observe)
				s.At(0, observe)
			})
		}
		s.Run()
		return monotone
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// trace serializes one full run — which event fired at which instant with
// which random draw — for determinism comparisons.
func trace(seed int64, deadlines []uint8) string {
	s := New(seed)
	var out string
	for i, d := range deadlines {
		i := i
		s.At(time.Duration(d)*time.Microsecond, func() {
			out += fmt.Sprintf("%d@%v:%d;", i, s.Now(), s.Uint32())
		})
	}
	s.Run()
	return out
}

// Property: identical seeds and workloads yield byte-identical traces.
func TestPropertyIdenticalSeedIdenticalTrace(t *testing.T) {
	f := func(seed int64, deadlines []uint8) bool {
		return trace(seed, deadlines) == trace(seed, deadlines)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// FuzzSchedulerDeterminism feeds arbitrary deadline workloads through two
// identically seeded schedulers and requires identical traces, monotone
// time included (the trace embeds Now at each firing).
func FuzzSchedulerDeterminism(f *testing.F) {
	f.Add(int64(1), []byte{0, 0, 5, 3, 3})
	f.Add(int64(-7), []byte{255, 1, 128})
	f.Add(int64(42), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, raw []byte) {
		if len(raw) > 256 {
			raw = raw[:256]
		}
		deadlines := make([]uint8, len(raw))
		copy(deadlines, raw)
		a := trace(seed, deadlines)
		b := trace(seed, deadlines)
		if a != b {
			t.Fatalf("seed %d: traces diverge:\n%s\n%s", seed, a, b)
		}
	})
}
