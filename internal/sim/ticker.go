package sim

import "time"

// Ticker repeatedly invokes a callback at a fixed virtual-time period until
// stopped or until the callback asks to stop. It is the building block for
// polling attackers (oom_adj watchers, symlink flippers, EOCD pollers).
type Ticker struct {
	s       *Scheduler
	period  time.Duration
	fn      func(now time.Duration) bool
	timer   *Timer
	stopped bool
}

// NewTicker schedules fn every period, starting one period from now. fn
// returns false to stop the ticker. Stop cancels any pending tick.
func NewTicker(s *Scheduler, period time.Duration, fn func(now time.Duration) bool) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{s: s, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.timer = t.s.After(t.period, func() {
		if t.stopped {
			return
		}
		if !t.fn(t.s.Now()) {
			t.stopped = true
			return
		}
		t.arm()
	})
}

// Stop cancels the ticker. Stopping twice is a no-op.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	if t.timer != nil {
		t.timer.Cancel()
	}
}

// Stopped reports whether the ticker has been stopped (by Stop or by the
// callback returning false).
func (t *Ticker) Stopped() bool { return t.stopped }
