package sim

import (
	"container/heap"
	"math"
	"math/bits"
	"time"
)

// maxDeadline is the "no limit" bound passed to eventQueue.pop by Step/Run.
const maxDeadline = time.Duration(math.MaxInt64)

// eventQueue is the scheduler's priority queue of pending events, ordered by
// (deadline, sequence). Two implementations exist: the original binary heap
// (heapQueue) and the hierarchical timer wheel (wheelQueue) that replaced it
// on the hot path. FuzzTimerWheel drives both with identical operation
// sequences and requires identical dispatch order, which is what lets the
// wheel hide behind the unchanged Scheduler API.
//
// All methods are called with the scheduler lock held. `now` is the
// scheduler's current virtual time; implementations may rely on the clock
// invariant that every queued event has a deadline >= now (At clamps past
// deadlines to the present, and the clock only advances to dispatched
// deadlines).
type eventQueue interface {
	// size counts queued events, including cancelled ones not yet swept.
	size() int
	// pop removes and returns the earliest live event with deadline <=
	// limit, or nil. Cancelled events encountered along the way are swept
	// and recycled.
	pop(now, limit time.Duration) *event
	// popTies removes and returns every live event sharing the earliest
	// deadline <= limit, in scheduling (seq) order. The returned slice is
	// owned by the queue and valid until the next popTies call.
	popTies(now, limit time.Duration) []*event
	// push inserts an event. The event's deadline must be >= now.
	push(now time.Duration, ev *event)
	// reset drops every queued event (recycling each) and restores the
	// queue to its boot state, retaining allocated capacity.
	reset()
}

// ---------------------------------------------------------------------------
// heapQueue: the original container/heap implementation.

type heapQueue struct {
	h    eventHeap
	ties []*event
	drop func(*event) // recycles swept cancelled events
}

func newHeapQueue(drop func(*event)) *heapQueue { return &heapQueue{drop: drop} }

func (q *heapQueue) size() int { return len(q.h) }

func (q *heapQueue) push(_ time.Duration, ev *event) { heap.Push(&q.h, ev) }

// sweep removes cancelled events from the top of the heap.
func (q *heapQueue) sweep() {
	for len(q.h) > 0 && q.h[0].cancelled {
		q.drop(q.popEvent())
	}
}

func (q *heapQueue) pop(_, limit time.Duration) *event {
	q.sweep()
	if len(q.h) == 0 || q.h[0].at > limit {
		return nil
	}
	return q.popEvent()
}

func (q *heapQueue) popTies(_, limit time.Duration) []*event {
	q.sweep()
	if len(q.h) == 0 || q.h[0].at > limit {
		return nil
	}
	at := q.h[0].at
	q.ties = q.ties[:0]
	for len(q.h) > 0 && q.h[0].at == at {
		ev := q.popEvent()
		if ev.cancelled {
			q.drop(ev)
			continue
		}
		// Heap pops at equal deadlines come out in seq order already.
		q.ties = append(q.ties, ev)
	}
	return q.ties
}

func (q *heapQueue) reset() {
	for _, ev := range q.h {
		q.drop(ev)
	}
	q.h = q.h[:0]
}

func (q *heapQueue) popEvent() *event {
	ev, ok := heap.Pop(&q.h).(*event)
	if !ok {
		panic("sim: event heap holds a non-event")
	}
	return ev
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		panic("sim: pushing a non-event")
	}
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// ---------------------------------------------------------------------------
// wheelQueue: a lazy hierarchical timer wheel.
//
// Level l has 64 slots of 64^l ticks each (tick = 1 ms), so level l spans
// 64^(l+1) ticks; events farther out than level 5's ~795-day horizon land in
// a small overflow list. An event with deadline tick e inserted when the
// clock tick was c goes to the smallest level whose span exceeds e-c, at
// slot (e >> 6l) & 63.
//
// The wheel is *lazy*: nothing migrates between levels as the clock
// advances. That is sound here because of the scheduler's clock invariant
// (the clock only advances to the next dispatched deadline, so every queued
// event keeps deadline >= now): an event's insertion-time delta only
// shrinks, so at scan time every level-l event still satisfies
// e in [scanTick, scanTick + 64^(l+1)).
//
// Finding the level minimum scans slots circularly from the slot of the
// current clock tick, using a per-level occupancy bitmap to skip empty
// slots. One wrinkle: over a window of 64^(l+1) ticks the bucket range
// [b0, b0+64] maps both its first bucket b0 and its last bucket b0+64 onto
// the start slot, so events found in the start slot are split into "near"
// (bucket b0 — beat everything) and "far" (bucket b0+64 — beaten by
// everything); a far minimum is only returned if no other slot is occupied.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 6
	wheelTick   = int64(time.Millisecond)
)

type wheelQueue struct {
	levels   [wheelLevels][wheelSlots][]*event
	occupied [wheelLevels]uint64
	overflow []*event
	count    int
	ties     []*event
	drop     func(*event)
}

func newWheelQueue(drop func(*event)) *wheelQueue { return &wheelQueue{drop: drop} }

func etick(ev *event) int64 { return int64(ev.at) / wheelTick }

func (q *wheelQueue) size() int { return q.count }

func (q *wheelQueue) push(now time.Duration, ev *event) {
	cur := int64(now) / wheelTick
	e := etick(ev)
	delta := e - cur // >= 0 by the clock invariant
	q.count++
	for l := 0; l < wheelLevels; l++ {
		if delta < 1<<(wheelBits*(l+1)) {
			slot := int(e>>(wheelBits*l)) & wheelMask
			q.levels[l][slot] = append(q.levels[l][slot], ev)
			q.occupied[l] |= 1 << slot
			return
		}
	}
	q.overflow = append(q.overflow, ev)
}

// sweepSlot compacts cancelled events out of level l, slot s, recycling
// them, and returns the surviving slice (updating the occupancy bit).
func (q *wheelQueue) sweepSlot(l, s int) []*event {
	slot := q.levels[l][s]
	kept := slot[:0]
	for _, ev := range slot {
		if ev.cancelled {
			q.drop(ev)
			q.count--
			continue
		}
		kept = append(kept, ev)
	}
	for i := len(kept); i < len(slot); i++ {
		slot[i] = nil
	}
	q.levels[l][s] = kept
	if len(kept) == 0 {
		q.occupied[l] &^= 1 << s
	}
	return kept
}

func lessEvent(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// levelMin returns the live minimum event at level l and its slot/index, or
// nil. Cancelled events encountered are swept.
func (q *wheelQueue) levelMin(l int, scanTick int64) (*event, int, int) {
	if q.occupied[l] == 0 {
		return nil, 0, 0
	}
	shift := uint(wheelBits * l)
	b0 := scanTick >> shift
	s0 := int(b0) & wheelMask
	var farBest *event
	farSlot, farIdx := 0, 0
	for k := 0; k < wheelSlots; k++ {
		s := (s0 + k) & wheelMask
		if q.occupied[l]&(1<<s) == 0 {
			continue
		}
		slot := q.sweepSlot(l, s)
		if len(slot) == 0 {
			continue
		}
		if k == 0 {
			// The start slot mixes bucket b0 (nearest) with bucket
			// b0+64 (farthest); only a near hit wins outright.
			var nearBest *event
			nearIdx := 0
			for i, ev := range slot {
				if etick(ev)>>shift == b0 {
					if nearBest == nil || lessEvent(ev, nearBest) {
						nearBest, nearIdx = ev, i
					}
				} else if farBest == nil || lessEvent(ev, farBest) {
					farBest, farSlot, farIdx = ev, s, i
				}
			}
			if nearBest != nil {
				return nearBest, s, nearIdx
			}
			continue
		}
		var best *event
		bestIdx := 0
		for i, ev := range slot {
			if best == nil || lessEvent(ev, best) {
				best, bestIdx = ev, i
			}
		}
		return best, s, bestIdx
	}
	return farBest, farSlot, farIdx
}

// min locates the global live minimum. It returns the event plus its
// location: level >= 0 with slot/index, or level == -1 for overflow (index
// in the overflow slice). Cancelled events met during the scan are swept.
func (q *wheelQueue) min(now time.Duration) (best *event, level, slot, idx int) {
	scanTick := int64(now) / wheelTick
	for l := 0; l < wheelLevels; l++ {
		if ev, s, i := q.levelMin(l, scanTick); ev != nil {
			if best == nil || lessEvent(ev, best) {
				best, level, slot, idx = ev, l, s, i
			}
		}
	}
	kept := q.overflow[:0]
	for _, ev := range q.overflow {
		if ev.cancelled {
			q.drop(ev)
			q.count--
			continue
		}
		kept = append(kept, ev)
	}
	for i := len(kept); i < len(q.overflow); i++ {
		q.overflow[i] = nil
	}
	q.overflow = kept
	for i, ev := range q.overflow {
		if best == nil || lessEvent(ev, best) {
			best, level, slot, idx = ev, -1, 0, i
		}
	}
	return best, level, slot, idx
}

// removeAt deletes the event at the located position (swap-remove; order
// within a slot is irrelevant, the min scan re-sorts by (at, seq)).
func (q *wheelQueue) removeAt(level, slot, idx int) {
	if level < 0 {
		last := len(q.overflow) - 1
		q.overflow[idx] = q.overflow[last]
		q.overflow[last] = nil
		q.overflow = q.overflow[:last]
	} else {
		sl := q.levels[level][slot]
		last := len(sl) - 1
		sl[idx] = sl[last]
		sl[last] = nil
		q.levels[level][slot] = sl[:last]
		if last == 0 {
			q.occupied[level] &^= 1 << slot
		}
	}
	q.count--
}

func (q *wheelQueue) pop(now, limit time.Duration) *event {
	ev, l, s, i := q.min(now)
	if ev == nil || ev.at > limit {
		return nil
	}
	q.removeAt(l, s, i)
	return ev
}

func (q *wheelQueue) popTies(now, limit time.Duration) []*event {
	ev, _, _, _ := q.min(now)
	if ev == nil || ev.at > limit {
		return nil
	}
	at := ev.at
	e := int64(at) / wheelTick
	q.ties = q.ties[:0]
	// Same-deadline events can sit at different levels (they were inserted
	// at different times, so their deltas chose different spans), but within
	// a level they share one slot: same deadline, same bucket.
	for l := 0; l < wheelLevels; l++ {
		s := int(e>>(wheelBits*l)) & wheelMask
		if q.occupied[l]&(1<<s) == 0 {
			continue
		}
		slot := q.levels[l][s]
		kept := slot[:0]
		for _, cand := range slot {
			switch {
			case cand.cancelled:
				q.drop(cand)
				q.count--
			case cand.at == at:
				q.ties = append(q.ties, cand)
				q.count--
			default:
				kept = append(kept, cand)
			}
		}
		for i := len(kept); i < len(slot); i++ {
			slot[i] = nil
		}
		q.levels[l][s] = kept
		if len(kept) == 0 {
			q.occupied[l] &^= 1 << s
		}
	}
	kept := q.overflow[:0]
	for _, cand := range q.overflow {
		switch {
		case cand.cancelled:
			q.drop(cand)
			q.count--
		case cand.at == at:
			q.ties = append(q.ties, cand)
			q.count--
		default:
			kept = append(kept, cand)
		}
	}
	for i := len(kept); i < len(q.overflow); i++ {
		q.overflow[i] = nil
	}
	q.overflow = kept
	// Ties gathered across levels arrive out of order; FIFO order is seq
	// order. Insertion sort: tie sets are tiny (the arbiter races are 2-5
	// events wide) and this avoids a sort.Slice closure allocation.
	for i := 1; i < len(q.ties); i++ {
		for j := i; j > 0 && q.ties[j].seq < q.ties[j-1].seq; j-- {
			q.ties[j], q.ties[j-1] = q.ties[j-1], q.ties[j]
		}
	}
	return q.ties
}

func (q *wheelQueue) reset() {
	for l := 0; l < wheelLevels; l++ {
		occ := q.occupied[l]
		for occ != 0 {
			s := trailingZeros64(occ)
			occ &^= 1 << s
			slot := q.levels[l][s]
			for i, ev := range slot {
				q.drop(ev)
				slot[i] = nil
			}
			q.levels[l][s] = slot[:0]
		}
		q.occupied[l] = 0
	}
	for i, ev := range q.overflow {
		q.drop(ev)
		q.overflow[i] = nil
	}
	q.overflow = q.overflow[:0]
	q.count = 0
}

func trailingZeros64(x uint64) int { return bits.TrailingZeros64(x) }

// queueFingerprint summarizes the pending-event state for the devicetest
// harness: (now, seq, live count) plus an order-independent digest of the
// live (deadline, seq) pairs. Two schedulers with equal fingerprints and
// equal clocks hold indistinguishable pending work.
func queueFingerprint(now time.Duration, seq uint64, q eventQueue) Fingerprint {
	fp := Fingerprint{Now: now, Seq: seq}
	switch impl := q.(type) {
	case *wheelQueue:
		for l := 0; l < wheelLevels; l++ {
			for s := 0; s < wheelSlots; s++ {
				for _, ev := range impl.levels[l][s] {
					fp.fold(ev)
				}
			}
		}
		for _, ev := range impl.overflow {
			fp.fold(ev)
		}
	case *heapQueue:
		for _, ev := range impl.h {
			fp.fold(ev)
		}
	}
	return fp
}

// Fingerprint is an order-independent digest of scheduler state, exposed for
// the reset-equivalence harness.
type Fingerprint struct {
	Now time.Duration
	Seq uint64
	// Pending counts live (non-cancelled) queued events; unswept cancelled
	// events are excluded because their sweep time is arbitrary.
	Pending int
	// Hash folds each live pending event's (deadline, seq) pair with a
	// commutative mix, so heap layout and wheel slot layout cannot leak in.
	Hash uint64
}

// fold mixes one live event into the digest.
func (fp *Fingerprint) fold(ev *event) {
	if ev.cancelled {
		return
	}
	fp.Pending++
	h := uint64(ev.at)*0x9e3779b97f4a7c15 ^ ev.seq*0xbf58476d1ce4e5b9
	h ^= h >> 31
	fp.Hash += h
}
