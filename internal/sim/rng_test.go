package sim

import (
	"math/rand"
	"testing"
)

// TestFastSourceMatchesMathRand pins fastSource's stream bit-for-bit to
// math/rand's, across fresh seeds, reseeds, cache hits (second Seed of the
// same value) and the higher-level rand.Rand draws the scheduler exposes.
// Everything downstream — jitter draws, gap windows, replay tokens — relies
// on this equivalence, so a mismatch here invalidates reset-equals-boot.
func TestFastSourceMatchesMathRand(t *testing.T) {
	seeds := []int64{0, 1, -1, 42, 89482311, 1<<31 - 1, 1 << 31, -(1 << 40), 123456789012345}
	for _, seed := range seeds {
		ref := rand.NewSource(seed).(rand.Source64)
		got := newFastSource(seed)
		for i := 0; i < 2000; i++ {
			if r, g := ref.Uint64(), got.Uint64(); r != g {
				t.Fatalf("seed %d: Uint64 #%d: fastSource %#x, math/rand %#x", seed, i, g, r)
			}
		}
		// Int63 must mask identically.
		if r, g := ref.Int63(), got.Int63(); r != g {
			t.Fatalf("seed %d: Int63: fastSource %#x, math/rand %#x", seed, g, r)
		}
	}

	// Reseeding mid-stream must restart the stream exactly, both on the
	// first sight of a seed (recurrence path) and the second (cache path).
	ref := rand.NewSource(7).(rand.Source64)
	got := newFastSource(99)
	for i := 0; i < 100; i++ {
		got.Uint64()
	}
	for pass := 0; pass < 2; pass++ {
		got.Seed(7)
		refAgain := rand.NewSource(7).(rand.Source64)
		for i := 0; i < 1500; i++ {
			if r, g := refAgain.Uint64(), got.Uint64(); r != g {
				t.Fatalf("reseed pass %d: Uint64 #%d: fastSource %#x, math/rand %#x", pass, i, g, r)
			}
		}
	}
	_ = ref

	// And through rand.Rand, the surface the scheduler actually uses.
	refR := rand.New(rand.NewSource(1234))
	gotR := rand.New(newFastSource(1234))
	for i := 0; i < 1000; i++ {
		if r, g := refR.Uint32(), gotR.Uint32(); r != g {
			t.Fatalf("rand.Rand Uint32 #%d: %#x vs %#x", i, g, r)
		}
		if r, g := refR.Int63n(1000003), gotR.Int63n(1000003); r != g {
			t.Fatalf("rand.Rand Int63n #%d: %d vs %d", i, g, r)
		}
		if r, g := refR.Float64(), gotR.Float64(); r != g {
			t.Fatalf("rand.Rand Float64 #%d: %v vs %v", i, g, r)
		}
	}
}
