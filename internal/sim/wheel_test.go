package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// driveBoth executes one operation script against a wheel-backed scheduler
// (the default) and a heap-backed one, returning the two dispatch logs.
// Each log line is "<event-id>@<deadline>"; identical logs mean identical
// dispatch order at identical instants.
func driveBoth(seed int64, script []byte) (wheelLog, heapLog string) {
	run := func(s *Scheduler) string {
		var log strings.Builder
		var timers []*Timer
		// A deterministic arbiter derived from the script keeps the tie
		// paths (popTies) under differential test too.
		arb := 0
		s.SetArbiter(func(n int) int {
			arb++
			return arb % n
		})
		id := 0
		var record func(id int) func()
		record = func(id int) func() {
			return func() {
				fmt.Fprintf(&log, "%d@%d\n", id, s.Now())
			}
		}
		for i := 0; i+1 < len(script); i += 2 {
			op, arg := script[i], int64(script[i+1])
			switch op % 6 {
			case 0: // schedule relative, spread across wheel levels
				d := time.Duration(arg*arg) * 3 * time.Millisecond
				timers = append(timers, s.After(d, record(id)))
				id++
			case 1: // schedule far out (exercises higher levels / overflow)
				d := time.Duration(arg) * 97 * time.Second
				timers = append(timers, s.After(d, record(id)))
				id++
			case 2: // same-instant tie at a round deadline
				at := s.Now() + time.Duration(arg%8)*time.Millisecond
				timers = append(timers, s.At(at, record(id)))
				id++
				timers = append(timers, s.At(at, record(id)))
				id++
			case 3: // cancel an earlier timer
				if len(timers) > 0 {
					timers[int(arg)%len(timers)].Cancel()
				}
			case 4: // bounded advance
				s.RunUntil(s.Now() + time.Duration(arg)*50*time.Millisecond)
			case 5: // single step
				s.Step()
			}
		}
		s.Run()
		fmt.Fprintf(&log, "end@%d pending=%d\n", s.Now(), s.Pending())
		return log.String()
	}
	return run(New(seed)), run(newHeapScheduler(seed))
}

// FuzzTimerWheel is the differential oracle for the hierarchical timer
// wheel: random schedule/cancel/advance scripts executed against both the
// original binary heap and the wheel must dispatch the same events in the
// same order at the same virtual instants.
func FuzzTimerWheel(f *testing.F) {
	f.Add(int64(1), []byte{0, 3, 0, 5, 2, 0, 3, 1, 4, 2, 5, 0})
	f.Add(int64(2), []byte{1, 200, 1, 3, 0, 250, 4, 255, 2, 7, 3, 0, 4, 100})
	f.Add(int64(3), []byte{2, 0, 2, 0, 2, 0, 5, 0, 5, 0, 4, 50})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		if len(script) > 512 {
			script = script[:512]
		}
		wheel, heap := driveBoth(seed, script)
		if wheel != heap {
			t.Fatalf("wheel and heap dispatch diverged\nwheel:\n%s\nheap:\n%s", wheel, heap)
		}
	})
}

// TestTimerWheelFarDeadlines pins level selection: deadlines spanning every
// wheel level plus the overflow list still dispatch in deadline order.
func TestTimerWheelFarDeadlines(t *testing.T) {
	s := New(1)
	deadlines := []time.Duration{
		500 * time.Microsecond, // level 0 (sub-tick)
		30 * time.Millisecond,  // level 0
		3 * time.Second,        // level 1
		2 * time.Minute,        // level 2
		20 * time.Hour,         // level 3
		40 * 24 * time.Hour,    // level 4
		900 * 24 * time.Hour,   // level 5 horizon
		3000 * 24 * time.Hour,  // overflow
	}
	var got []time.Duration
	// Schedule in reverse so insertion order cannot mask ordering bugs.
	for i := len(deadlines) - 1; i >= 0; i-- {
		d := deadlines[i]
		s.At(d, func() { got = append(got, s.Now()) })
	}
	s.Run()
	if len(got) != len(deadlines) {
		t.Fatalf("dispatched %d events, want %d", len(got), len(deadlines))
	}
	for i, d := range deadlines {
		if got[i] != d {
			t.Fatalf("dispatch %d at %v, want %v (full order %v)", i, got[i], d, got)
		}
	}
}

// TestTimerWheelWrapAmbiguity forces the start-slot near/far collision: an
// event one full level-span away shares the start slot with a near event,
// and the near one must fire first.
func TestTimerWheelWrapAmbiguity(t *testing.T) {
	s := New(1)
	var order []string
	// Advance the clock off slot alignment first.
	s.At(70*time.Millisecond, func() {
		// near: same level-1 bucket region as the clock; far: one level-1
		// span (4096 ticks) later, mapping to the same slot.
		s.At(126*time.Millisecond, func() { order = append(order, "near") })
		s.At(4166*time.Millisecond, func() { order = append(order, "far") })
		s.At(130*time.Millisecond, func() { order = append(order, "mid") })
	})
	s.Run()
	want := []string{"near", "mid", "far"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestSchedulerReset pins the arena's reset contract at the scheduler
// level: after any amount of use, Reset(seed) is indistinguishable from
// New(seed) — clock, pending set, fingerprint and the full random stream.
func TestSchedulerReset(t *testing.T) {
	s := New(99)
	for i := 0; i < 50; i++ {
		s.After(time.Duration(i)*7*time.Millisecond, func() {})
	}
	tm := s.After(time.Hour, func() {})
	s.RunUntil(200 * time.Millisecond)
	tm.Cancel()
	_ = s.Uint32()

	s.Reset(2017)
	fresh := New(2017)
	if got, want := s.Fingerprint(), fresh.Fingerprint(); got != want {
		t.Fatalf("reset fingerprint %+v, want fresh %+v", got, want)
	}
	if s.Now() != 0 || s.Pending() != 0 {
		t.Fatalf("reset left now=%v pending=%d", s.Now(), s.Pending())
	}
	for i := 0; i < 1000; i++ {
		if got, want := s.Uint32(), fresh.Uint32(); got != want {
			t.Fatalf("draw %d: reset stream %d, fresh stream %d", i, got, want)
		}
	}
}

// TestResetInvalidatesStaleTimers: a Timer created before Reset must not be
// able to cancel an event scheduled after Reset, even though the event
// struct is recycled through the pool.
func TestResetInvalidatesStaleTimers(t *testing.T) {
	s := New(1)
	stale := s.After(time.Second, func() {})
	s.Reset(1)
	fired := false
	s.After(time.Second, func() { fired = true })
	stale.Cancel() // may recycle into the same *event; generation must block it
	s.Run()
	if !fired {
		t.Fatal("stale pre-reset Timer cancelled a post-reset event")
	}
}

// TestTimerCancelAfterFireIsNoop: cancelling a fired timer whose event was
// already recycled into a new pending event must not cancel the new one.
func TestTimerCancelAfterFireIsNoop(t *testing.T) {
	s := New(1)
	first := s.After(time.Millisecond, func() {})
	s.Run() // fires and recycles first's event
	fired := false
	s.After(time.Millisecond, func() { fired = true })
	first.Cancel()
	s.Run()
	if !fired {
		t.Fatal("Cancel of a fired timer killed the recycled event")
	}
}

// TestSchedulerAllocBudget pins the per-event cost of the simulator hot
// path: in steady state, scheduling (AfterFn) plus dispatching an event
// through the pooled wheel must not allocate at all.
func TestSchedulerAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	s := New(1)
	fn := func() {}
	// Warm the pool and the wheel slots.
	for i := 0; i < 64; i++ {
		s.AfterFn(time.Duration(i)*time.Millisecond, fn)
	}
	s.Run()
	perEvent := testing.AllocsPerRun(2000, func() {
		s.AfterFn(3*time.Millisecond, fn)
		s.Step()
	})
	const budget = 0.0
	if perEvent > budget {
		t.Fatalf("schedule+dispatch allocates %.2f objects/event, budget %.2f", perEvent, budget)
	}
}
