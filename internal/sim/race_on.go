//go:build race

package sim

// raceEnabled reports whether the race detector is compiled in; the
// allocation-budget tests skip under race because instrumentation changes
// allocation counts.
const raceEnabled = true
