package sim

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/ghost-installer/gia/internal/obs"
)

func TestSchedulerRunsInDeadlineOrder(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30*time.Millisecond, func() { got = append(got, 3) })
	s.At(10*time.Millisecond, func() { got = append(got, 1) })
	s.At(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()

	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %d, want %d", i, got[i], want[i])
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now() = %v, want 30ms", s.Now())
	}
}

func TestSchedulerSameInstantIsFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d (same-instant events must be FIFO)", i, v, i)
		}
	}
}

func TestSchedulerAfterIsRelative(t *testing.T) {
	s := New(1)
	var at time.Duration
	s.At(5*time.Millisecond, func() {
		s.After(7*time.Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != 12*time.Millisecond {
		t.Errorf("nested After fired at %v, want 12ms", at)
	}
}

func TestSchedulerPastEventClampsToNow(t *testing.T) {
	s := New(1)
	var at time.Duration
	s.At(10*time.Millisecond, func() {
		s.At(time.Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != 10*time.Millisecond {
		t.Errorf("past-scheduled event fired at %v, want clamped to 10ms", at)
	}
}

func TestTimerCancel(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.At(time.Millisecond, func() { fired = true })
	tm.Cancel()
	tm.Cancel() // double-cancel is a no-op
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if s.Pending() != 0 {
		t.Errorf("Pending() = %d after Run, want 0", s.Pending())
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New(1)
	ran := 0
	s.At(5*time.Millisecond, func() { ran++ })
	s.At(50*time.Millisecond, func() { ran++ })

	s.RunUntil(10 * time.Millisecond)
	if ran != 1 {
		t.Fatalf("ran %d events by 10ms, want 1", ran)
	}
	if s.Now() != 10*time.Millisecond {
		t.Errorf("Now() = %v, want 10ms", s.Now())
	}

	s.RunUntil(100 * time.Millisecond)
	if ran != 2 {
		t.Fatalf("ran %d events by 100ms, want 2", ran)
	}
	if s.Now() != 100*time.Millisecond {
		t.Errorf("Now() = %v, want 100ms", s.Now())
	}
}

func TestRunUntilEmptyQueueStillAdvances(t *testing.T) {
	s := New(1)
	s.RunUntil(42 * time.Millisecond)
	if s.Now() != 42*time.Millisecond {
		t.Errorf("Now() = %v, want 42ms", s.Now())
	}
}

func TestUniformBoundsAndDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		va := a.Uniform(time.Millisecond, 5*time.Millisecond)
		vb := b.Uniform(time.Millisecond, 5*time.Millisecond)
		if va != vb {
			t.Fatalf("draw %d: same seed produced %v and %v", i, va, vb)
		}
		if va < time.Millisecond || va > 5*time.Millisecond {
			t.Fatalf("draw %d: %v outside [1ms, 5ms]", i, va)
		}
	}
	if got := a.Uniform(3*time.Second, 3*time.Second); got != 3*time.Second {
		t.Errorf("degenerate range draw = %v, want 3s", got)
	}
}

func TestUniformPanicsOnInvertedRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uniform(hi<lo) did not panic")
		}
	}()
	New(1).Uniform(2*time.Second, time.Second)
}

func TestTickerFiresUntilStopped(t *testing.T) {
	s := New(1)
	ticks := 0
	tk := NewTicker(s, time.Millisecond, func(now time.Duration) bool {
		ticks++
		return ticks < 5
	})
	s.Run()
	if ticks != 5 {
		t.Errorf("ticks = %d, want 5", ticks)
	}
	if !tk.Stopped() {
		t.Error("ticker not stopped after callback returned false")
	}
}

func TestTickerStop(t *testing.T) {
	s := New(1)
	ticks := 0
	var tk *Ticker
	tk = NewTicker(s, time.Millisecond, func(now time.Duration) bool {
		ticks++
		if ticks == 3 {
			tk.Stop()
			tk.Stop() // double stop is a no-op
		}
		return true
	})
	s.Run()
	if ticks != 3 {
		t.Errorf("ticks = %d, want 3 (stopped mid-run)", ticks)
	}
}

func TestTickerPanicsOnNonPositivePeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTicker(0) did not panic")
		}
	}()
	NewTicker(New(1), 0, func(time.Duration) bool { return false })
}

// Property: for any set of deadlines, events run in nondecreasing time order
// and the clock ends at the max deadline.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(deadlines []uint16) bool {
		if len(deadlines) == 0 {
			return true
		}
		s := New(99)
		var fired []time.Duration
		var maxAt time.Duration
		for _, d := range deadlines {
			at := time.Duration(d) * time.Microsecond
			if at > maxAt {
				maxAt = at
			}
			s.At(at, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(deadlines) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return s.Now() == maxAt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: two schedulers with the same seed make identical uniform draws.
func TestPropertySeedDeterminism(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < int(n); i++ {
			if a.Uniform(0, time.Second) != b.Uniform(0, time.Second) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSchedulerMetrics exercises the Instrument hooks: scheduled/dispatched
// counters, cancel transitions, queue depth, and per-dispatch trace
// instants stamped with event deadlines.
func TestSchedulerMetrics(t *testing.T) {
	s := New(1)
	reg := obs.NewRegistry()
	tr := obs.NewTrace()
	track := tr.VirtualTrack("sched")
	s.Instrument(Metrics{
		Scheduled:  reg.Counter("sim.scheduled"),
		Dispatched: reg.Counter("sim.dispatched"),
		Cancelled:  reg.Counter("sim.cancelled"),
		Depth:      reg.Gauge("sim.depth"),
		Track:      track,
	})

	s.At(10*time.Millisecond, func() {})
	s.At(20*time.Millisecond, func() {})
	tm := s.At(30*time.Millisecond, func() { t.Error("cancelled event fired") })
	if got := reg.Snapshot().Gauge("sim.depth"); got != 3 {
		t.Errorf("depth after scheduling = %d, want 3", got)
	}
	tm.Cancel()
	tm.Cancel() // second cancel is not a transition
	s.Run()

	snap := reg.Snapshot()
	if got := snap.Counter("sim.scheduled"); got != 3 {
		t.Errorf("scheduled = %d, want 3", got)
	}
	if got := snap.Counter("sim.dispatched"); got != 2 {
		t.Errorf("dispatched = %d, want 2", got)
	}
	if got := snap.Counter("sim.cancelled"); got != 1 {
		t.Errorf("cancelled = %d, want 1", got)
	}
	if got := snap.Gauge("sim.depth"); got != 0 {
		t.Errorf("depth after drain = %d, want 0", got)
	}
	evs := track.Events()
	if len(evs) != 2 || evs[0].Start != 10*time.Millisecond || evs[1].Start != 20*time.Millisecond {
		t.Errorf("dispatch instants = %+v", evs)
	}
}
