// Package timeline records a merged, virtual-time-ordered view of
// everything observable on the device during an experiment: filesystem
// events in watched directories, package-manager state changes,
// IntentFirewall alerts, DAPP detections and AIT steps. It is the textual
// equivalent of the paper's demo videos, and the debugging surface for
// anyone building new attacks or defenses on this library.
package timeline

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/ghost-installer/gia/internal/defense"
	"github.com/ghost-installer/gia/internal/installer"
	"github.com/ghost-installer/gia/internal/intents"
	"github.com/ghost-installer/gia/internal/obs"
	"github.com/ghost-installer/gia/internal/pm"
	"github.com/ghost-installer/gia/internal/vfs"
)

// Entry is one recorded event.
type Entry struct {
	At     time.Duration
	Source string
	Detail string
}

func (e Entry) String() string {
	return fmt.Sprintf("[%10.3fms] %-8s %s", float64(e.At)/float64(time.Millisecond), e.Source, e.Detail)
}

// Recorder accumulates entries. It is single-threaded, like the simulation.
type Recorder struct {
	now     func() time.Duration
	entries []Entry
	watches []*vfs.Watch
}

// New creates a recorder reading timestamps from now (Scheduler.Now).
func New(now func() time.Duration) *Recorder {
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &Recorder{now: now}
}

// Add records an event at the current virtual time.
func (r *Recorder) Add(source, detail string) {
	r.entries = append(r.entries, Entry{At: r.now(), Source: source, Detail: detail})
}

// addAt records an event with an explicit timestamp (for merged AIT traces).
func (r *Recorder) addAt(at time.Duration, source, detail string) {
	r.entries = append(r.entries, Entry{At: at, Source: source, Detail: detail})
}

// WatchFS subscribes the recorder to all filesystem events in dirs.
func (r *Recorder) WatchFS(fs *vfs.FS, dirs ...string) error {
	for _, dir := range dirs {
		w, err := fs.Watch(dir, vfs.EvAll, func(ev vfs.Event) {
			r.Add("fs", ev.String())
		})
		if err != nil {
			return fmt.Errorf("timeline: watch %s: %w", dir, err)
		}
		r.watches = append(r.watches, w)
	}
	return nil
}

// WatchPackages subscribes to package-manager state changes.
func (r *Recorder) WatchPackages(pms *pm.Service) {
	pms.Subscribe(func(ev pm.Event) {
		r.Add("pm", fmt.Sprintf("%s %s (uid %d)", ev.Action, ev.Package, ev.UID))
	})
}

// WatchFirewall subscribes to IntentFirewall alerts.
func (r *Recorder) WatchFirewall(fw *intents.Firewall) {
	fw.OnAlert(func(a intents.Alert) {
		r.Add("firewall", fmt.Sprintf("redirect suspected at %s: %s then %s within %v",
			a.Recipient, a.FirstSender, a.SecondSender, a.Gap))
	})
}

// WatchDAPP subscribes to DAPP detections.
func (r *Recorder) WatchDAPP(d *defense.DAPP) {
	d.OnAlert(func(a defense.Alert) {
		r.Add("dapp", fmt.Sprintf("%s %s: %s", a.Kind, a.Package, a.Detail))
	})
}

// RecordAIT merges an AIT trace into the timeline at its own timestamps.
func (r *Recorder) RecordAIT(res installer.Result) {
	for _, step := range res.Trace {
		r.addAt(step.At, "ait", fmt.Sprintf("[%s] step %d %s: %s", res.Store, step.Step, step.Name, step.Detail))
	}
}

// Close cancels the filesystem subscriptions.
func (r *Recorder) Close() {
	for _, w := range r.watches {
		w.Close()
	}
	r.watches = nil
}

// Entries returns all events in time order (stable for equal timestamps).
func (r *Recorder) Entries() []Entry {
	out := append([]Entry(nil), r.entries...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Render writes the timeline to w.
func (r *Recorder) Render(w io.Writer) error {
	for _, e := range r.Entries() {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}

// jsonEntry fixes the JSONL field order of WriteJSON.
type jsonEntry struct {
	AtNS   int64  `json:"at_ns"`
	Source string `json:"source"`
	Detail string `json:"detail"`
}

// WriteJSON writes the timeline as JSONL — one entry object per line, in
// the same virtual-time order Render uses, so the two views line up
// line-for-line.
func (r *Recorder) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range r.Entries() {
		line, err := json.Marshal(jsonEntry{AtNS: int64(e.At), Source: e.Source, Detail: e.Detail})
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ExportSpans emits every entry onto a virtual-time obs track as an
// instant named by its source with the rendered detail — the adapter that
// makes the TOCTOU timeline and the trace view agree event-for-event. A
// nil track is a no-op.
func (r *Recorder) ExportSpans(k *obs.Track) {
	if k == nil {
		return
	}
	for _, e := range r.Entries() {
		k.InstantAt(e.At, e.Source, e.Detail)
	}
}
