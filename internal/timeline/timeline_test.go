package timeline

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/attack"
	"github.com/ghost-installer/gia/internal/defense"
	"github.com/ghost-installer/gia/internal/device"
	"github.com/ghost-installer/gia/internal/installer"
	"github.com/ghost-installer/gia/internal/obs"
	"github.com/ghost-installer/gia/internal/perm"
	"github.com/ghost-installer/gia/internal/sig"
)

func TestRecorderOrdersAndRenders(t *testing.T) {
	now := time.Duration(0)
	r := New(func() time.Duration { return now })
	now = 5 * time.Millisecond
	r.Add("x", "second")
	r.addAt(time.Millisecond, "y", "first")
	entries := r.Entries()
	if len(entries) != 2 || entries[0].Detail != "first" || entries[1].Detail != "second" {
		t.Fatalf("entries = %+v", entries)
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "first") || !strings.Contains(b.String(), "second") {
		t.Errorf("render = %q", b.String())
	}
}

func TestNilClockDefaults(t *testing.T) {
	r := New(nil)
	r.Add("x", "event")
	if r.Entries()[0].At != 0 {
		t.Error("nil clock did not default to zero")
	}
}

// TestFullHijackTimeline records a complete hijack with every source wired
// and checks the narrative order: download events, attacker replacement,
// DAPP race alert, install, DAPP signature alert.
func TestFullHijackTimeline(t *testing.T) {
	dev, err := device.Boot(device.Profile{Name: "s6", Vendor: "samsung", Seed: 601})
	if err != nil {
		t.Fatal(err)
	}
	prof := installer.Amazon()
	store, err := installer.Deploy(dev, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	target := apk.Build(apk.Manifest{
		Package: "com.popular.app", VersionCode: 1, Label: "Popular",
		UsesPerms: []string{perm.Internet},
	}, map[string][]byte{"classes.dex": []byte("genuine")}, sig.NewKey("dev"))
	store.Store.Publish(target)
	mal, err := attack.DeployMalware(dev, "com.fun.game")
	if err != nil {
		t.Fatal(err)
	}
	dapp, err := defense.Deploy(dev, []string{prof.StagingDir})
	if err != nil {
		t.Fatal(err)
	}

	rec := New(dev.Sched.Now)
	defer rec.Close()
	if err := rec.WatchFS(dev.FS, prof.StagingDir); err != nil {
		t.Fatal(err)
	}
	rec.WatchPackages(dev.PMS)
	rec.WatchFirewall(dev.AMS.Firewall())
	rec.WatchDAPP(dapp)

	atk := attack.NewTOCTOU(mal, attack.ConfigForStore(prof, attack.StrategyFileObserver), target)
	if err := atk.Launch(); err != nil {
		t.Fatal(err)
	}
	defer atk.Stop()

	var res installer.Result
	store.RequestInstall("com.popular.app", func(r installer.Result) { res = r })
	dev.Sched.RunUntil(dev.Sched.Now() + 2*time.Minute)
	if !res.Hijacked {
		t.Fatalf("hijack failed: %v", res.Err)
	}
	rec.RecordAIT(res)

	var b strings.Builder
	if err := rec.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// The narrative landmarks, in order. DAPP's observer registered
	// before the recorder's, so its race alert precedes the recorder's
	// MOVED_TO line within the same instant.
	landmarks := []string{
		"CREATE",             // staged file appears
		"CLOSE_WRITE",        // download completes
		"race-suspected",     // DAPP's first heuristic (the replacement)
		"MOVED_TO",           // the replacement as the recorder saw it
		"PACKAGE_ADDED",      // PMS installs
		"signature-mismatch", // DAPP's final verdict
	}
	pos := 0
	for _, mark := range landmarks {
		idx := strings.Index(out[pos:], mark)
		if idx < 0 {
			t.Fatalf("timeline missing %q after offset %d:\n%s", mark, pos, out)
		}
		pos += idx
	}
	// The AIT steps are merged at their original timestamps.
	if !strings.Contains(out, "step 1 invocation") || !strings.Contains(out, "step 4 installed") {
		t.Errorf("AIT steps missing from timeline:\n%s", out)
	}
}

// TestWriteJSONAndExportSpansAgree pins the adapter contract: the JSONL
// export, the text render and the obs-track view of one recorder are the
// same events in the same order.
func TestWriteJSONAndExportSpansAgree(t *testing.T) {
	var now time.Duration
	rec := New(func() time.Duration { return now })
	now = 3 * time.Millisecond
	rec.Add("fs", `create "staging/app.apk"`)
	now = time.Millisecond
	rec.Add("pm", "installed com.example (uid 10001)")
	rec.addAt(2*time.Millisecond, "ait", "step 2 download")

	entries := rec.Entries()
	if len(entries) != 3 || entries[0].Source != "pm" {
		t.Fatalf("entries not time-sorted: %+v", entries)
	}

	var jsonBuf bytes.Buffer
	if err := rec.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(jsonBuf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("jsonl lines = %d, want 3:\n%s", len(lines), jsonBuf.String())
	}
	var first jsonEntry
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.AtNS != int64(time.Millisecond) || first.Source != "pm" {
		t.Errorf("first jsonl entry: %+v", first)
	}

	tr := obs.NewTrace()
	track := tr.VirtualTrack("timeline")
	rec.ExportSpans(track)
	evs := track.Events()
	if len(evs) != len(entries) {
		t.Fatalf("span events = %d, want %d", len(evs), len(entries))
	}
	for i, ev := range evs {
		if !ev.Instant || ev.Start != entries[i].At || ev.Name != entries[i].Source || ev.Detail != entries[i].Detail {
			t.Errorf("event %d = %+v, want entry %+v", i, ev, entries[i])
		}
	}
	// Nil track: no-op.
	rec.ExportSpans(nil)
}
