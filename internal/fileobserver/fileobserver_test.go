package fileobserver

import (
	"testing"
	"time"

	"github.com/ghost-installer/gia/internal/vfs"
)

const appA vfs.UID = 10001

func newFS(t *testing.T) *vfs.FS {
	t.Helper()
	fs := vfs.New(func() time.Duration { return 0 })
	if err := fs.MkdirAll("/sdcard/store", vfs.Root, vfs.ModeDir); err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestObserverDeliversMaskedEvents(t *testing.T) {
	fs := newFS(t)
	var got []Event
	o := New(fs, "/sdcard/store", CloseWrite|CloseNoWrite, func(ev Event) {
		got = append(got, ev)
	})
	if err := o.StartWatching(); err != nil {
		t.Fatal(err)
	}
	defer o.StopWatching()

	if err := fs.WriteFile("/sdcard/store/a.apk", []byte("x"), appA, vfs.ModeShared); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/sdcard/store/a.apk", appA); err != nil {
		t.Fatal(err)
	}

	if len(got) != 2 {
		t.Fatalf("events = %v, want CLOSE_WRITE then CLOSE_NOWRITE", got)
	}
	if got[0].Mask != CloseWrite || got[1].Mask != CloseNoWrite {
		t.Errorf("masks = %x, %x", got[0].Mask, got[1].Mask)
	}
	if got[0].Name != "a.apk" || got[0].Path != "/sdcard/store/a.apk" {
		t.Errorf("event identity = %+v", got[0])
	}
}

func TestObserverAllEventsSequence(t *testing.T) {
	fs := newFS(t)
	var names []string
	o := New(fs, "/sdcard/store", AllEvents, func(ev Event) {
		names = append(names, MaskName(ev.Mask))
	})
	if err := o.StartWatching(); err != nil {
		t.Fatal(err)
	}
	defer o.StopWatching()

	if err := fs.WriteFile("/sdcard/store/a.apk", []byte("x"), appA, vfs.ModeShared); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/sdcard/store/a.apk", appA); err != nil {
		t.Fatal(err)
	}

	want := []string{"CREATE", "OPEN", "MODIFY", "CLOSE_WRITE", "DELETE"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("event %d = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestObserverStartStopIdempotent(t *testing.T) {
	fs := newFS(t)
	count := 0
	o := New(fs, "/sdcard/store", AllEvents, func(Event) { count++ })
	if err := o.StartWatching(); err != nil {
		t.Fatal(err)
	}
	if err := o.StartWatching(); err != nil { // no double delivery
		t.Fatal(err)
	}
	if !o.Watching() {
		t.Error("Watching() = false after start")
	}
	if err := fs.WriteFile("/sdcard/store/f", []byte("x"), appA, vfs.ModeShared); err != nil {
		t.Fatal(err)
	}
	first := count
	if first == 0 {
		t.Fatal("no events delivered")
	}

	o.StopWatching()
	o.StopWatching()
	if o.Watching() {
		t.Error("Watching() = true after stop")
	}
	if err := fs.WriteFile("/sdcard/store/g", []byte("x"), appA, vfs.ModeShared); err != nil {
		t.Fatal(err)
	}
	if count != first {
		t.Errorf("events after stop: %d -> %d", first, count)
	}
}

func TestObserverOnNotYetExistingDir(t *testing.T) {
	fs := newFS(t)
	count := 0
	o := New(fs, "/sdcard/future", Create, func(Event) { count++ })
	if err := o.StartWatching(); err != nil {
		t.Fatal(err)
	}
	defer o.StopWatching()

	if err := fs.Mkdir("/sdcard/future", appA, vfs.ModeDir); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/sdcard/future/f", []byte("x"), appA, vfs.ModeShared); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("count = %d, want 1 (CREATE of f)", count)
	}
}

func TestMaskNames(t *testing.T) {
	for mask, want := range map[int]string{
		Access: "ACCESS", Modify: "MODIFY", Attrib: "ATTRIB",
		CloseWrite: "CLOSE_WRITE", CloseNoWrite: "CLOSE_NOWRITE",
		Open: "OPEN", MovedFrom: "MOVED_FROM", MovedTo: "MOVED_TO",
		Create: "CREATE", Delete: "DELETE",
	} {
		if got := MaskName(mask); got != want {
			t.Errorf("MaskName(0x%x) = %q, want %q", mask, got, want)
		}
	}
}
