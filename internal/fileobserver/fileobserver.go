// Package fileobserver mirrors android.os.FileObserver: inotify-backed
// monitoring of one directory, with the same event mask constants. It is the
// only capability the Section III-B attacker needs beyond the SD-card
// permission, and also the sensing layer of the DAPP defense.
package fileobserver

import (
	"fmt"

	"github.com/ghost-installer/gia/internal/vfs"
)

// Event mask bits, matching android.os.FileObserver's constants.
const (
	Access       = 0x0001
	Modify       = 0x0002
	Attrib       = 0x0004
	CloseWrite   = 0x0008
	CloseNoWrite = 0x0010
	Open         = 0x0020
	MovedFrom    = 0x0040
	MovedTo      = 0x0080
	Create       = 0x0100
	Delete       = 0x0200
	AllEvents    = 0x0FFF
)

// Event is one observed filesystem event.
type Event struct {
	Mask  int    // one of the mask bits above
	Path  string // full path of the affected file
	Name  string // base name, as FileObserver reports
	Actor vfs.UID
}

func (e Event) String() string {
	return fmt.Sprintf("%s %s", MaskName(e.Mask), e.Path)
}

// MaskName names a single mask bit.
func MaskName(mask int) string {
	switch mask {
	case Access:
		return "ACCESS"
	case Modify:
		return "MODIFY"
	case Attrib:
		return "ATTRIB"
	case CloseWrite:
		return "CLOSE_WRITE"
	case CloseNoWrite:
		return "CLOSE_NOWRITE"
	case Open:
		return "OPEN"
	case MovedFrom:
		return "MOVED_FROM"
	case MovedTo:
		return "MOVED_TO"
	case Create:
		return "CREATE"
	case Delete:
		return "DELETE"
	default:
		return fmt.Sprintf("MASK(0x%x)", mask)
	}
}

var kindToMask = map[vfs.EventKind]int{
	vfs.EvAccess:       Access,
	vfs.EvModify:       Modify,
	vfs.EvAttrib:       Attrib,
	vfs.EvCloseWrite:   CloseWrite,
	vfs.EvCloseNoWrite: CloseNoWrite,
	vfs.EvOpen:         Open,
	vfs.EvMovedFrom:    MovedFrom,
	vfs.EvMovedTo:      MovedTo,
	vfs.EvCreate:       Create,
	vfs.EvDelete:       Delete,
}

func maskToKinds(mask int) vfs.EventKind {
	var kinds vfs.EventKind
	for kind, m := range kindToMask {
		if mask&m != 0 {
			kinds |= kind
		}
	}
	return kinds
}

// Observer watches one directory. Like the Android class, it must be
// started before events are delivered and can be stopped and restarted.
type Observer struct {
	fs      *vfs.FS
	dir     string
	mask    int
	onEvent func(Event)
	watch   *vfs.Watch
}

// New creates an observer for dir with the given event mask. The directory
// does not need to exist yet.
func New(fs *vfs.FS, dir string, mask int, onEvent func(Event)) *Observer {
	return &Observer{fs: fs, dir: dir, mask: mask, onEvent: onEvent}
}

// Dir reports the watched directory.
func (o *Observer) Dir() string { return o.dir }

// StartWatching begins event delivery. Calling it on a running observer is
// a no-op, like the Android API.
func (o *Observer) StartWatching() error {
	if o.watch != nil {
		return nil
	}
	w, err := o.fs.Watch(o.dir, maskToKinds(o.mask), func(ev vfs.Event) {
		mask, ok := kindToMask[ev.Kind]
		if !ok {
			return
		}
		o.onEvent(Event{Mask: mask, Path: ev.Path, Name: ev.Name(), Actor: ev.Actor})
	})
	if err != nil {
		return fmt.Errorf("start watching %s: %w", o.dir, err)
	}
	o.watch = w
	return nil
}

// StopWatching halts event delivery. Safe to call repeatedly.
func (o *Observer) StopWatching() {
	if o.watch == nil {
		return
	}
	o.watch.Close()
	o.watch = nil
}

// Watching reports whether the observer is active.
func (o *Observer) Watching() bool { return o.watch != nil }
