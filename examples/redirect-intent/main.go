// Command redirect-intent reproduces the Section III-D phishing attack —
// Facebook redirects the user to Google Play to install Messenger, and
// background malware repaints the store page with a lookalike app before
// the user perceives it — then shows the two IntentFirewall defenses.
package main

import (
	"fmt"
	"log"

	"github.com/ghost-installer/gia"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tab, err := gia.RedirectStudyTable(5)
	if err != nil {
		return err
	}
	fmt.Println(tab.Render())

	// Drill into the stock-Android run with a manual scenario to show the
	// oom_adj side channel in action.
	dev, err := gia.BootDevice(gia.DeviceProfile{Name: "nexus5", Vendor: "lge", Seed: 9})
	if err != nil {
		return err
	}
	if _, err := gia.DeployInstaller(dev, gia.GooglePlayProfile(), nil); err != nil {
		return err
	}
	fbKey := gia.NewKey("facebook")
	fb := gia.BuildAPK(gia.Manifest{Package: "com.facebook.katana", VersionCode: 1, Label: "Facebook"}, nil, fbKey)
	if _, err := dev.PMS.InstallFromParsed(fb); err != nil {
		return err
	}
	dev.AMS.RegisterActivity("com.facebook.katana", "Feed", true, "", func(gia.Intent) string { return "facebook:feed" })
	dev.Run()

	mal, err := gia.DeployMalware(dev, "com.fun.game")
	if err != nil {
		return err
	}
	red := gia.NewRedirect(mal, gia.RedirectConfig{
		VictimPkg:      "com.facebook.katana",
		StorePkg:       "com.android.vending",
		StoreActivity:  "AppDetails",
		LookalikeAppID: "com.faceb00k.orca",
	})
	if err := red.Launch(); err != nil {
		return err
	}
	defer red.Stop()

	_ = dev.AMS.StartActivity("android", gia.Intent{TargetPkg: "com.facebook.katana", Component: "Feed"})
	dev.Sched.RunUntil(dev.Sched.Now() + 200*1e6)
	fmt.Printf("user in Facebook; screen = %q\n", dev.AMS.Screen().Content)

	_ = dev.AMS.StartActivity("com.facebook.katana", gia.Intent{
		TargetPkg: "com.android.vending", Component: "AppDetails",
		Extras: map[string]string{"appId": "com.facebook.orca"},
	})
	dev.Sched.RunUntil(dev.Sched.Now() + 1200*1e6)
	fmt.Printf("user perceives the store page: %q (racing intents fired: %d)\n",
		dev.AMS.Screen().Content, red.Fired())
	if red.Succeeded() {
		fmt.Println("the user is looking at the attacker's lookalike app, trusting Facebook's redirection")
	}
	return nil
}
