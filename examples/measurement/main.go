// Command measurement regenerates the Section IV measurement study:
// the installer classifier over the Play and pre-installed populations
// (Tables II and III), the hard-coded market-link census (Table IV), the
// INSTALL_PACKAGES census (Table VI), and the platform-key and Hare
// studies.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/ghost-installer/gia"
)

func main() {
	seed := flag.Int64("seed", 2017, "corpus seed")
	scale := flag.Float64("scale", 1.0, "population scale (1.0 = paper-sized)")
	flag.Parse()
	if err := run(*seed, *scale); err != nil {
		log.Fatal(err)
	}
}

func run(seed int64, scale float64) error {
	c := gia.GenerateCorpus(gia.CorpusConfig{Seed: seed, Scale: scale})
	fmt.Printf("corpus: %d play apps, %d factory images, %d store apps\n\n",
		len(c.PlayApps), len(c.Images), len(c.StoreApps))
	for _, tab := range gia.MeasurementTables(c) {
		fmt.Println(tab.Render())
	}

	cls := gia.ClassifyInstallers(c.PlayApps)
	fmt.Printf("classifier summary: %d installers, %d potentially vulnerable (%.1f%% of known)\n",
		cls.Installers, cls.Vulnerable, 100*cls.VulnerableFracKnown())
	return nil
}
