// Command defense-matrix regenerates the evaluation of the paper's
// defenses: Table VII (effectiveness and complexity), the per-store hijack
// study, the Download Manager policy study and the redirect-Intent study.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/ghost-installer/gia"
)

func main() {
	seed := flag.Int64("seed", 1, "scenario seed")
	flag.Parse()
	if err := run(*seed); err != nil {
		log.Fatal(err)
	}
}

func run(seed int64) error {
	for _, gen := range []func(int64) (gia.ExperimentTable, error){
		gia.DefenseMatrixTable,
		gia.HijackStudyTable,
		gia.DMStudyTable,
		gia.RedirectStudyTable,
	} {
		tab, err := gen(seed)
		if err != nil {
			return err
		}
		fmt.Println(tab.Render())
	}
	return nil
}
