// Command hare-escalation reproduces the Section III-B privilege
// escalation: the malware defines a hanging permission
// (com.vlingo.midas.contacts.permission.READ), uses a Ghost Installer —
// Xiaomi's unauthenticated push receiver — to plant the platform-signed,
// Hare-creating system app, and then reads the user's contacts through the
// hijacked permission. It also shows the Certifi-gate variant: installing a
// vulnerable platform-signed remote-support app and driving its
// INSTALL_PACKAGES privilege.
package main

import (
	"fmt"
	"log"

	"github.com/ghost-installer/gia"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scenario, err := gia.NewScenario(gia.XiaomiProfile(), 77)
	if err != nil {
		return err
	}
	dev, mal := scenario.Dev, scenario.Mal

	fmt.Println("== Hare escalation ==")
	hare := gia.NewHareEscalation(mal, "com.vlingo.midas.contacts.permission.READ", "com.vlingo.midas")
	if err := hare.DefinePermission(); err != nil {
		return err
	}
	fmt.Println("malware defined the hanging permission first (normal level) and holds it")

	victim := hare.BuildVictimApp(dev.Profile.PlatformKey)
	scenario.Store.Store.Publish(victim)
	if _, err := dev.AMS.SendBroadcast(mal.Name(), gia.Intent{
		Action: "com.xiaomi.market.action.PUSH",
		Extras: map[string]string{"payload": `{"jsonContent":"{\"type\":\"app\",\"appId\":\"7\",\"packageName\":\"com.vlingo.midas\"}"}`},
	}); err != nil {
		return err
	}
	dev.Run()
	if _, ok := dev.PMS.Installed("com.vlingo.midas"); !ok {
		return fmt.Errorf("ghost install of the victim system app failed")
	}
	fmt.Println("S-Voice (platform-signed, Hare-creating) ghost-installed via the forged Xiaomi push")

	hare.RegisterVictimComponents(dev)
	contacts, err := hare.StealContacts()
	if err != nil {
		return err
	}
	fmt.Printf("malware read the guarded contacts service: %s\n\n", contacts)

	fmt.Println("== Certifi-gate variant (vulnerable TeamViewer) ==")
	cg := gia.NewCertifigate(mal, "com.teamviewer.quicksupport")
	vuln := cg.BuildVulnerableApp(dev.Profile.PlatformKey, false /* unpatched */)
	scenario.Store.Store.Publish(vuln)
	plugin := gia.BuildAPK(gia.Manifest{Package: "com.evil.plugin", VersionCode: 1, Label: "Plugin"},
		nil, mal.Key)
	scenario.Store.Store.Publish(plugin)
	if _, err := dev.AMS.SendBroadcast(mal.Name(), gia.Intent{
		Action: "com.xiaomi.market.action.PUSH",
		Extras: map[string]string{"payload": `{"jsonContent":"{\"type\":\"app\",\"appId\":\"8\",\"packageName\":\"com.teamviewer.quicksupport\"}"}`},
	}); err != nil {
		return err
	}
	dev.Run()
	if err := cg.RegisterVictimComponents(dev, gia.XiaomiProfile().StoreHost); err != nil {
		return err
	}
	if err := cg.Exploit("com.evil.plugin"); err != nil {
		return err
	}
	fmt.Printf("plugin installed through the support app's INSTALL_PACKAGES: %v\n", cg.InstallLog())
	return nil
}
