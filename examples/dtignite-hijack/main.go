// Command dtignite-hijack reproduces the Section III-B headline attack:
// DT Ignite, the carrier bloatware pusher pre-installed by 30+ carriers,
// silently installs an app chosen by the carrier — and an SD-card-only
// attacker swaps the package using both strategies (FileObserver
// fingerprinting and the 2-second wait-and-see rule).
package main

import (
	"fmt"
	"log"

	"github.com/ghost-installer/gia"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, strategy := range []gia.AttackStrategy{gia.StrategyFileObserver, gia.StrategyWaitAndSee} {
		scenario, err := gia.NewScenario(gia.DTIgniteProfile(), 7)
		if err != nil {
			return err
		}
		cfg := gia.AttackConfigForStore(gia.DTIgniteProfile(), strategy)
		atk := gia.NewTOCTOU(scenario.Mal, cfg, scenario.Target)
		if err := atk.Launch(); err != nil {
			return err
		}
		res := scenario.RunAIT()
		atk.Stop()

		fmt.Printf("== DT Ignite push via %v ==\n", strategy)
		if strategy == gia.StrategyWaitAndSee {
			fmt.Printf("  pre-measured wait: %v after download completion\n", cfg.WaitDelay)
		} else {
			fmt.Printf("  fingerprint: %d CLOSE_NOWRITE verification reads\n", cfg.VerifyReads)
		}
		fmt.Printf("  carrier pushed %s; device received content signed by %q (hijacked=%v)\n",
			res.Requested, res.Installed.Cert.Subject, res.Hijacked)
		for _, r := range atk.Replacements() {
			fmt.Printf("  replacement landed on %s at t=%v\n", r.Path, r.At)
		}
		fmt.Println()
	}

	// The same pusher on a device with the patched FUSE daemon.
	scenario, err := gia.NewScenario(gia.DTIgniteProfile(), 8)
	if err != nil {
		return err
	}
	gia.EnableFUSEPatch(scenario.Dev, true)
	atk := gia.NewTOCTOU(scenario.Mal, gia.AttackConfigForStore(gia.DTIgniteProfile(), gia.StrategyFileObserver), scenario.Target)
	if err := atk.Launch(); err != nil {
		return err
	}
	res := scenario.RunAIT()
	atk.Stop()
	fmt.Printf("== With the Section V-C FUSE patch ==\n  hijacked=%v clean=%v\n", res.Hijacked, res.Clean())
	return nil
}
