// Command secure-installer demonstrates the Section VII developer
// suggestions: the stock Amazon profile falls to the TOCTOU hijack, while
// the hardened profile (prefer internal staging; verify on a private copy)
// survives both strategies — including on a low-end device that must fall
// back to the SD card.
package main

import (
	"fmt"
	"log"

	"github.com/ghost-installer/gia"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func runOne(prof gia.InstallerProfile, strategy gia.AttackStrategy, seed int64) (gia.InstallResult, error) {
	scenario, err := gia.NewScenario(prof, seed)
	if err != nil {
		return gia.InstallResult{}, err
	}
	atk := gia.NewTOCTOU(scenario.Mal, gia.AttackConfigForStore(gia.AmazonProfile(), strategy), scenario.Target)
	if err := atk.Launch(); err != nil {
		return gia.InstallResult{}, err
	}
	res := scenario.RunAIT()
	atk.Stop()
	return res, nil
}

func run() error {
	for _, strategy := range []gia.AttackStrategy{gia.StrategyFileObserver, gia.StrategyWaitAndSee} {
		stock, err := runOne(gia.AmazonProfile(), strategy, 11)
		if err != nil {
			return err
		}
		hardened, err := runOne(gia.HardenedProfile(gia.AmazonProfile()), strategy, 11)
		if err != nil {
			return err
		}
		fmt.Printf("%-14v stock: hijacked=%-5v | hardened: hijacked=%v clean=%v\n",
			strategy, stock.Hijacked, hardened.Hijacked, hardened.Clean())
	}

	fmt.Println("\nhardened AIT trace (note the internal staging path):")
	res, err := runOne(gia.HardenedProfile(gia.AmazonProfile()), gia.StrategyFileObserver, 13)
	if err != nil {
		return err
	}
	for _, step := range res.Trace {
		fmt.Println("  ", step)
	}

	tab, err := gia.AllTables(gia.ExperimentOptions{Seed: 3, Scale: 0.02, PerfReps: 5})
	if err != nil {
		return err
	}
	// Print just the suggestion study from the full sweep.
	for _, t := range tab {
		if t.ID == "Suggestion Study" {
			fmt.Println()
			fmt.Println(t.Render())
		}
	}
	return nil
}
