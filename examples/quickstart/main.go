// Command quickstart boots a simulated device, publishes an app on the
// Amazon appstore, watches a Ghost Installer hijack the installation, and
// then shows both defenses stopping or flagging the same attack.
package main

import (
	"fmt"
	"log"

	"github.com/ghost-installer/gia"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== GIA quickstart: hijacking the Amazon appstore AIT ==")

	// 1. A victim device with the Amazon appstore pre-installed.
	scenario, err := gia.NewScenario(gia.AmazonProfile(), 42)
	if err != nil {
		return err
	}

	// 2. The malware — an ordinary app with only the storage permission —
	// mounts the FileObserver TOCTOU attack of Section III-B.
	cfg := gia.AttackConfigForStore(gia.AmazonProfile(), gia.StrategyFileObserver)
	atk := gia.NewTOCTOU(scenario.Mal, cfg, scenario.Target)
	if err := atk.Launch(); err != nil {
		return err
	}

	res := scenario.RunAIT()
	atk.Stop()
	fmt.Printf("install of %s: hijacked=%v installedSigner=%s\n",
		res.Requested, res.Hijacked, res.Installed.Cert.Subject)
	for _, step := range res.Trace {
		fmt.Println("  ", step)
	}

	// 3. Same attack against the patched FUSE daemon: blocked outright.
	scenario2, err := gia.NewScenario(gia.AmazonProfile(), 43)
	if err != nil {
		return err
	}
	gia.EnableFUSEPatch(scenario2.Dev, true)
	atk2 := gia.NewTOCTOU(scenario2.Mal, cfg, scenario2.Target)
	if err := atk2.Launch(); err != nil {
		return err
	}
	res2 := scenario2.RunAIT()
	atk2.Stop()
	fmt.Printf("\nwith the FUSE DAC patch: hijacked=%v clean=%v replacements=%d\n",
		res2.Hijacked, res2.Clean(), len(atk2.Replacements()))

	// 4. And with the unprivileged DAPP app: the hijack lands but the user
	// is alerted before trusting the app.
	scenario3, err := gia.NewScenario(gia.AmazonProfile(), 44)
	if err != nil {
		return err
	}
	dapp, err := gia.DeployDAPP(scenario3.Dev, []string{gia.AmazonProfile().StagingDir})
	if err != nil {
		return err
	}
	atk3 := gia.NewTOCTOU(scenario3.Mal, cfg, scenario3.Target)
	if err := atk3.Launch(); err != nil {
		return err
	}
	res3 := scenario3.RunAIT()
	atk3.Stop()
	fmt.Printf("\nwith DAPP: hijacked=%v detected=%v\n", res3.Hijacked, dapp.Thwarted(res3.Requested))
	for _, alert := range dapp.Alerts() {
		fmt.Printf("  DAPP alert: %s %s (%s)\n", alert.Kind, alert.Package, alert.Detail)
	}
	return nil
}
