#!/bin/sh
# verify.sh — repo-wide quality gate: formatting, vet, build, race-enabled
# tests. Run before every commit; exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== go build ./... =="
go build ./...

echo "== go test -race -count=2 ./... =="
# -count=2 defeats the test cache and catches order- or state-dependent
# flakes in the race-enabled suite (golden traces, the defense matrix and
# the chaos sweeps must be bit-identical run over run).
go test -race -count=2 ./...

echo "== fuzz smoke (5s per target) =="
# Run every Fuzz target briefly; fuzzing requires one target per invocation.
go test ./... -list 'Fuzz.*' 2>/dev/null | while read -r line; do
    case "$line" in
    Fuzz*) targets="${targets:-} $line" ;;
    ok*)
        pkg=$(echo "$line" | awk '{print $2}')
        for t in ${targets:-}; do
            echo "-- $pkg $t"
            go test "$pkg" -run '^$' -fuzz "^${t}\$" -fuzztime=5s
        done
        targets=""
        ;;
    esac
done

echo "verify.sh: all checks passed"
