#!/bin/sh
# verify.sh — repo-wide quality gate: formatting, vet, build, race-enabled
# tests. Run before every commit; exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== gia-vet (determinism lint: sim, chaos, experiment, serve) =="
# The custom linter forbids time.Now, the global math/rand source and
# map-iteration-ordered output in the deterministic packages. In
# internal/serve every wall-clock read must carry a //gia:wallclock
# justification so nothing unguarded leaks into telemetry output.
go run ./cmd/gia-vet

echo "== go build ./... =="
go build ./...

echo "== go test -race -count=2 ./... =="
# -count=2 defeats the test cache and catches order- or state-dependent
# flakes in the race-enabled suite (golden traces, the defense matrix and
# the chaos sweeps must be bit-identical run over run).
go test -race -count=2 ./...

echo "== bench smoke (worker-pool engine under race, 1 iteration) =="
# One race-enabled iteration of the parallel experiment engine: AllTables
# and the fleet study fan out on the shared pool, so this catches data
# races the serial unit tests cannot reach.
go test -race -run '^$' -bench '^(BenchmarkAllTables|BenchmarkFleetStudy)' -benchtime=1x .

echo "== alloc budgets (non-race) =="
# The race-enabled suite skips the per-instruction allocation budgets
# (instrumentation changes allocation counts); pin them here without race.
# The obs gate proves disabled observability hooks cost zero allocations,
# which is what keeps the analysis budgets intact with hooks compiled in.
go test -run 'AllocBudget' -count=1 ./internal/analysis
go test -run '^TestDisabledHooksZeroAlloc$' -count=1 ./internal/obs
# Flight-recorder rings must append without allocating: the recorder is
# always on in gia-serve, so any per-event allocation is a fleet-wide tax.
go test -run '^TestRingAppendZeroAlloc$' -count=1 ./internal/obs
# The simulator hot path (schedule+dispatch through the pooled timer
# wheel) must stay allocation-free, and one full AIT schedule on a warm
# arena device must stay within its pinned object budget.
go test -run '^TestSchedulerAllocBudget$' -count=1 ./internal/sim
go test -run '^TestAITAllocBudget$' -count=1 ./internal/experiment

echo "== arena reset equivalence (race-enabled) =="
# A pooled device reset in place must be indistinguishable from a fresh
# boot: byte-identical state fingerprints across every GIA x defense cell
# and fault plan, plus the restored seeded RNG stream.
go test -race -count=1 \
    -run '^(TestArenaResetEquivalence|TestDeviceResetRestoresRNGStream)$' \
    ./internal/devicetest
go test -race -count=1 -run '^TestFastSourceMatchesMathRand$' ./internal/sim

echo "== serve shard ownership (race-enabled) =="
# The fleet daemon multiplexes racy HTTP goroutines onto goroutine-owned
# arena shards; this pins the ownership discipline under the race
# detector explicitly (the simulation substrates are not thread-safe, so
# any fleet code touching device state off its shard goroutine is a
# detected race, not a flake).
go test -race -count=1 \
    -run '^(TestShardOwnershipSerializesConcurrentOps|TestConcurrentLifecycleAcrossShards)$' \
    ./internal/serve

echo "== trace/metrics parity across worker counts =="
# A virtual-only trace, its JSONL export and the metrics snapshot must be
# byte-identical at 1 worker and at NumCPU workers.
go test -count=1 -run '^TestTraceParityAcrossWorkers$' ./internal/chaos
# Flight-recorder determinism: the violation dumps (Chrome trace + JSONL,
# keyed by replay token) for the golden TOCTOU fault workload must be
# byte-identical at 1 worker and at NumCPU workers.
go test -count=1 -run '^TestFlightDumpParityAcrossWorkers$' ./internal/experiment

echo "== POR soundness + stealing determinism (race-enabled) =="
# Partial-order reduction may only prune orderings an explored ordering
# already decides: reduced vs exhaustive exploration must agree on the
# violation set and minimized tokens, on synthetic commuting worlds and on
# the golden wait-and-see AIT workload. The work-stealing frontier must
# report an identical Result at 1 worker and NumCPU workers and hold the
# MaxSchedules cap exactly while stealing.
go test -race -count=1 \
    -run '^(TestExploreOrdersPORSoundness|TestFrontierStealDeterministicResult|TestMaxSchedulesTruncatesUnderStealing)$' \
    ./internal/chaos
go test -count=1 -run '^TestPORSoundnessGoldenWorkload$' ./internal/experiment

echo "== analysis-cache parity =="
# Cached and uncached scans must be byte-identical: full-output diff at 1
# and NumCPU workers, plus the rendered -cache=on vs -cache=off tables.
go test -count=1 -run '^(TestCachedMatchesUncached|TestCacheTableParity)$' \
    ./internal/measure ./internal/experiment

echo "== summary-cache parity (interprocedural summaries) =="
# The per-class taint summaries are memoized content-addressed; findings
# and threat scores through the caching engine must equal a plain one's.
go test -count=1 -run '^TestSummaryCacheParity$' ./internal/analysis

echo "== taint truth-set accuracy (100% required) =="
# Every hand-labelled TP/TN case for the taint and anti-repackaging
# detectors must classify correctly — accuracy below 100% fails the gate.
go test -count=1 -run '^(TestTruthSetAccuracy|TestTruthSetCoversBothPolarities)$' \
    ./internal/measure

echo "== cache smoke under race (warm corpus scan, NumCPU workers) =="
# Two race-enabled warm scans through the shared cache: concurrent hits,
# singleflight dedups and LRU movement all run under the race detector.
go test -race -run '^$' -bench '^BenchmarkScanArtifactsWarm$' -benchtime=1x -count=2 .

echo "== gia-serve daemon smoke (HTTP lifecycle + graceful shutdown) =="
# Boot the fleet daemon on a loopback ephemeral port, drive one device
# through create/install/attack/replay/reclaim over real HTTP, scrape
# /metrics for the arena and serve counters, then require a clean
# SIGTERM drain within the timeout. Runs in a subshell with its own EXIT
# trap so a failing step cannot leak the daemon process.
(
    servedir=$(mktemp -d)
    servepid=""
    trap 'test -n "$servepid" && kill "$servepid" 2>/dev/null; rm -rf "$servedir"' EXIT
    go build -o "$servedir/gia-serve" ./cmd/gia-serve
    "$servedir/gia-serve" -addr 127.0.0.1:0 >"$servedir/serve.log" 2>&1 &
    servepid=$!
    url=""
    i=0
    while [ $i -lt 100 ]; do
        url=$(sed -n 's/^gia-serve: listening on \(http:.*\)$/\1/p' "$servedir/serve.log")
        test -n "$url" && break
        kill -0 "$servepid" 2>/dev/null || {
            echo "verify.sh: gia-serve died before listening" >&2
            cat "$servedir/serve.log" >&2
            exit 1
        }
        sleep 0.1
        i=$((i + 1))
    done
    test -n "$url" || {
        echo "verify.sh: gia-serve never reported its listen URL" >&2
        exit 1
    }
    "$servedir/gia-serve" -smoke "$url"
    kill -TERM "$servepid"
    i=0
    while kill -0 "$servepid" 2>/dev/null; do
        i=$((i + 1))
        if [ $i -gt 300 ]; then
            echo "verify.sh: gia-serve did not drain within 30s of SIGTERM" >&2
            exit 1
        fi
        sleep 0.1
    done
    wait "$servepid" 2>/dev/null || true
    servepid=""
    grep -q "drained and stopped" "$servedir/serve.log" || {
        echo "verify.sh: gia-serve shutdown was not a clean drain" >&2
        cat "$servedir/serve.log" >&2
        exit 1
    }
)

echo "== fuzz smoke (5s per target) =="
# Run every Fuzz target briefly; fuzzing requires one target per
# invocation. The target list is materialized in a temp file — not a pipe —
# so a failing list or a failing fuzz run fails the gate instead of being
# swallowed by a subshell.
fuzzlist=$(mktemp)
trap 'rm -f "$fuzzlist"' EXIT
go test ./... -list 'Fuzz.*' >"$fuzzlist" || {
    echo "verify.sh: fuzz target listing failed" >&2
    exit 1
}
targets=""
while read -r line; do
    case "$line" in
    Fuzz*) targets="${targets:-} $line" ;;
    FAIL*)
        echo "verify.sh: fuzz target listing reported: $line" >&2
        exit 1
        ;;
    ok*)
        pkg=$(echo "$line" | awk '{print $2}')
        for t in ${targets:-}; do
            echo "-- $pkg $t"
            go test "$pkg" -run '^$' -fuzz "^${t}\$" -fuzztime=5s || exit 1
        done
        targets=""
        ;;
    esac
done <"$fuzzlist"
if [ -n "${targets:-}" ]; then
    echo "verify.sh: fuzz targets not attributed to any package:${targets}" >&2
    exit 1
fi

echo "== bench compare (soft gate; STRICT_BENCH=1 to enforce) =="
# Fresh throughput snapshot diffed against the committed BENCH_scan.json:
# a >20% drop in explorer schedules/s or warm-scan throughput prints a
# REGRESSION warning. Warn-only by default — committed numbers come from a
# particular host — and a hard failure when STRICT_BENCH=1 (CI).
benchtmp=$(mktemp)
go run ./cmd/gia-bench -benchjson "$benchtmp" -compare BENCH_scan.json \
    ${STRICT_BENCH:+-strict} || {
    rm -f "$benchtmp"
    echo "verify.sh: bench compare failed" >&2
    exit 1
}
rm -f "$benchtmp"

echo "verify.sh: all checks passed"
