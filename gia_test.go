package gia_test

// Integration tests written purely against the public facade: what a
// downstream user of the library can do.

import (
	"testing"
	"time"

	"github.com/ghost-installer/gia"
)

func TestPublicAPIHijackLifecycle(t *testing.T) {
	scenario, err := gia.NewScenario(gia.AmazonProfile(), 1001)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gia.AttackConfigForStore(gia.AmazonProfile(), gia.StrategyFileObserver)
	atk := gia.NewTOCTOU(scenario.Mal, cfg, scenario.Target)
	if err := atk.Launch(); err != nil {
		t.Fatal(err)
	}
	defer atk.Stop()
	res := scenario.RunAIT()
	if !res.Hijacked {
		t.Fatalf("hijack failed: %v", res.Err)
	}
	if evil := atk.EvilAPK(); evil.Manifest.Package != res.Installed.Name() {
		t.Errorf("installed %s, evil apk %s", res.Installed.Name(), evil.Manifest.Package)
	}
}

func TestPublicAPIDefenses(t *testing.T) {
	scenario, err := gia.NewScenario(gia.BaiduProfile(), 1003)
	if err != nil {
		t.Fatal(err)
	}
	gia.EnableFUSEPatch(scenario.Dev, true)
	gia.EnableIntentDetection(scenario.Dev, true)
	gia.EnableIntentOrigin(scenario.Dev, true)
	dapp, err := gia.DeployDAPP(scenario.Dev, []string{gia.BaiduProfile().StagingDir})
	if err != nil {
		t.Fatal(err)
	}
	atk := gia.NewTOCTOU(scenario.Mal, gia.AttackConfigForStore(gia.BaiduProfile(), gia.StrategyFileObserver), scenario.Target)
	if err := atk.Launch(); err != nil {
		t.Fatal(err)
	}
	defer atk.Stop()
	res := scenario.RunAIT()
	if !res.Clean() {
		t.Fatalf("patched FUSE did not protect: hijacked=%v err=%v", res.Hijacked, res.Err)
	}
	if len(dapp.Alerts()) != 0 {
		t.Errorf("DAPP alerts on a blocked attack: %v", dapp.Alerts())
	}
}

func TestPublicAPIBuildInstallFlow(t *testing.T) {
	dev, err := gia.BootDevice(gia.DeviceProfile{Name: "custom", Vendor: "acme", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	store, err := gia.DeployInstaller(dev, gia.GooglePlayProfile(), nil)
	if err != nil {
		t.Fatal(err)
	}
	key := gia.NewKey("my-dev")
	myAPK := gia.BuildAPK(gia.Manifest{
		Package: "com.mine", VersionCode: 1, Label: "Mine",
		UsesPerms: []string{gia.PermInternet},
	}, map[string][]byte{"classes.dex": []byte("mine")}, key)
	store.Store.Publish(myAPK)

	var res gia.InstallResult
	store.RequestInstall("com.mine", func(r gia.InstallResult) { res = r })
	dev.Run()
	if !res.Clean() {
		t.Fatalf("install failed: %v", res.Err)
	}
	data := myAPK.Encode()
	decoded, err := gia.DecodeAPK(data)
	if err != nil || decoded.Manifest.Package != "com.mine" {
		t.Errorf("decode round trip: %v", err)
	}
	repack := gia.RepackageAPK(myAPK, map[string][]byte{"classes.dex": []byte("evil")}, gia.NewKey("other"), false)
	if repack.ManifestDigest() != myAPK.ManifestDigest() {
		t.Error("repackage changed manifest")
	}
}

func TestPublicAPIMeasurement(t *testing.T) {
	c := gia.GenerateCorpus(gia.CorpusConfig{Seed: 2, Scale: 0.02})
	cls := gia.ClassifyInstallers(c.PlayApps)
	if cls.Installers == 0 || cls.Vulnerable == 0 {
		t.Fatalf("classification = %+v", cls)
	}
	tables := gia.MeasurementTables(c)
	if len(tables) != 6 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tab := range tables {
		if tab.Render() == "" {
			t.Errorf("%s renders empty", tab.ID)
		}
	}
}

func TestPublicAPIAllTablesSmoke(t *testing.T) {
	tables, err := gia.AllTables(gia.ExperimentOptions{Seed: 3, Scale: 0.02, PerfReps: 3})
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"Table I", "Table II", "Table III", "Table IV", "Table V",
		"Table VI", "Table VII", "Table VIII", "Table IX", "Table X",
		"Figure 1", "Hijack Study", "DM Study", "Redirect Study",
		"Key Study", "Hare Study", "Suggestion Study", "Flow Study",
		"Threat Scores", "DAPP Study", "Fleet Study", "Chaos Study"}
	if len(tables) != len(wantIDs) {
		t.Fatalf("tables = %d, want %d", len(tables), len(wantIDs))
	}
	for i, id := range wantIDs {
		if tables[i].ID != id {
			t.Errorf("tables[%d] = %s, want %s", i, tables[i].ID, id)
		}
	}
}

func TestPublicAPISweeps(t *testing.T) {
	points, err := gia.ReactionLatencySweep(gia.AmazonProfile(), []time.Duration{5 * time.Millisecond}, 2, 7, 0)
	if err != nil || len(points) != 1 || points[0].SuccessRate != 1 {
		t.Fatalf("latency sweep = %+v, %v", points, err)
	}
	gaps, err := gia.DMGapSweep([]time.Duration{2 * time.Millisecond}, 20, 1, 9, 0)
	if err != nil || len(gaps) != 1 {
		t.Fatalf("gap sweep = %+v, %v", gaps, err)
	}
}

func TestPublicAPIHardenedProfile(t *testing.T) {
	prof := gia.HardenedProfile(gia.AmazonProfile())
	if !prof.PreferInternal || !prof.SecureVerify {
		t.Error("hardening flags not set")
	}
	scenario, err := gia.NewScenario(prof, 1009)
	if err != nil {
		t.Fatal(err)
	}
	atk := gia.NewTOCTOU(scenario.Mal, gia.AttackConfigForStore(gia.AmazonProfile(), gia.StrategyFileObserver), scenario.Target)
	if err := atk.Launch(); err != nil {
		t.Fatal(err)
	}
	defer atk.Stop()
	if res := scenario.RunAIT(); !res.Clean() {
		t.Fatalf("hardened profile fell: hijacked=%v err=%v", res.Hijacked, res.Err)
	}
}
