// Package gia is the public API of the Ghost Installer Attack (GIA)
// simulation library — a from-scratch reproduction of "Ghost Installer in
// the Shadow: Security Analysis of App Installation on Android" (DSN 2017).
//
// The library provides:
//
//   - a deterministic, virtual-time simulated Android device (filesystem,
//     FUSE-wrapped SD card, PackageManagerService, PackageInstallerActivity,
//     Download Manager, Intent system with IntentFirewall, /proc);
//   - behavioural profiles of the installer apps the paper analysed
//     (Amazon, Xiaomi, Baidu, Qihoo360, DTIgnite, SlideMe, Google Play, …)
//     running the full App Installation Transaction (AIT);
//   - every Ghost Installer Attack: TOCTOU installation hijacking (both the
//     FileObserver and wait-and-see strategies), the Download Manager
//     symlink attack, the redirect-Intent attack, command injection against
//     store interfaces and Hare privilege escalation;
//   - both defenses: the DAPP user-level app and the system-level FUSE DAC
//     patch plus the two IntentFirewall schemes;
//   - the Section IV measurement study over a calibrated synthetic corpus,
//     and an experiment harness that regenerates every table and figure of
//     the paper's evaluation.
//
// Quickstart:
//
//	dev, _ := gia.BootDevice(gia.DeviceProfile{Name: "galaxy-s6", Vendor: "samsung", Seed: 1})
//	store, _ := gia.DeployInstaller(dev, gia.AmazonProfile(), nil)
//	store.Store.Publish(myAPK)
//	store.RequestInstall("com.example.app", func(r gia.InstallResult) { ... })
//	dev.Run()
package gia

import (
	"io"
	"time"

	"github.com/ghost-installer/gia/internal/analysis"
	"github.com/ghost-installer/gia/internal/apk"
	"github.com/ghost-installer/gia/internal/attack"
	"github.com/ghost-installer/gia/internal/chaos"
	"github.com/ghost-installer/gia/internal/corpus"
	"github.com/ghost-installer/gia/internal/defense"
	"github.com/ghost-installer/gia/internal/device"
	"github.com/ghost-installer/gia/internal/dm"
	"github.com/ghost-installer/gia/internal/experiment"
	"github.com/ghost-installer/gia/internal/fault"
	"github.com/ghost-installer/gia/internal/installer"
	"github.com/ghost-installer/gia/internal/intents"
	"github.com/ghost-installer/gia/internal/measure"
	"github.com/ghost-installer/gia/internal/obs"
	"github.com/ghost-installer/gia/internal/par"
	"github.com/ghost-installer/gia/internal/perm"
	"github.com/ghost-installer/gia/internal/sig"
	"github.com/ghost-installer/gia/internal/sim"
	"github.com/ghost-installer/gia/internal/timeline"
	"github.com/ghost-installer/gia/internal/vfs"
)

// Device simulation.
type (
	// Device is one booted simulated Android phone.
	Device = device.Device
	// DeviceProfile configures a device to boot.
	DeviceProfile = device.Profile
	// UID is a Linux/Android user id on the device.
	UID = vfs.UID
	// Intent is an explicit Android intent.
	Intent = intents.Intent
	// FirewallAlert is a redirect-Intent detection event.
	FirewallAlert = intents.Alert
)

// BootDevice boots a simulated device.
func BootDevice(p DeviceProfile) (*Device, error) { return device.Boot(p) }

// Download Manager symlink policies, selectable via DeviceProfile.DMPolicy.
const (
	DMPolicyLegacy  = dm.PolicyLegacy
	DMPolicyRecheck = dm.PolicyRecheck
	DMPolicyFixed   = dm.PolicyFixed
)

// Packages and signing.
type (
	// APK is an application package.
	APK = apk.APK
	// Manifest is an AndroidManifest.
	Manifest = apk.Manifest
	// PermissionDef declares a permission in a manifest.
	PermissionDef = apk.PermissionDef
	// Component declares an app component in a manifest.
	Component = apk.Component
	// SigningKey signs APKs.
	SigningKey = sig.Key
)

// BuildAPK assembles and signs an APK.
func BuildAPK(m Manifest, files map[string][]byte, key *SigningKey) *APK {
	return apk.Build(m, files, key)
}

// NewKey derives a deterministic signing key for a subject.
func NewKey(subject string) *SigningKey { return sig.NewKey(subject) }

// DecodeAPK parses an encoded APK, requiring a complete EOCD record.
func DecodeAPK(data []byte) (*APK, error) { return apk.Decode(data) }

// RepackageAPK builds a same-manifest repackage with attacker files.
func RepackageAPK(orig *APK, files map[string][]byte, key *SigningKey, stripDRM bool) *APK {
	return apk.Repackage(orig, files, key, stripDRM)
}

// Well-known permission names.
const (
	PermWriteExternalStorage = perm.WriteExternalStorage
	PermReadExternalStorage  = perm.ReadExternalStorage
	PermInstallPackages      = perm.InstallPackages
	PermInternet             = perm.Internet
)

// Installers and the AIT.
type (
	// InstallerProfile describes one store's AIT implementation.
	InstallerProfile = installer.Profile
	// InstallerApp is a deployed installer on a device.
	InstallerApp = installer.App
	// InstallResult is the outcome of one AIT.
	InstallResult = installer.Result
	// AITStep is one trace entry of an AIT run.
	AITStep = installer.TraceStep
)

// Store profiles measured in the paper.
func AmazonProfile() InstallerProfile      { return installer.Amazon() }
func AmazonV2Profile() InstallerProfile    { return installer.AmazonV2() }
func XiaomiProfile() InstallerProfile      { return installer.Xiaomi() }
func BaiduProfile() InstallerProfile       { return installer.Baidu() }
func Qihoo360Profile() InstallerProfile    { return installer.Qihoo360() }
func DTIgniteProfile() InstallerProfile    { return installer.DTIgnite() }
func SlideMeProfile() InstallerProfile     { return installer.SlideMe() }
func TencentProfile() InstallerProfile     { return installer.Tencent() }
func HuaweiStoreProfile() InstallerProfile { return installer.HuaweiStore() }
func SprintZoneProfile() InstallerProfile  { return installer.SprintZone() }
func GooglePlayProfile() InstallerProfile  { return installer.GooglePlay() }
func APKPureProfile() InstallerProfile     { return installer.APKPure() }
func GalaxyAppsProfile() InstallerProfile  { return installer.GalaxyApps() }

// OrdinaryDeveloperProfile is the hash-check-free self-made installer of
// Section II.
func OrdinaryDeveloperProfile(pkg string) InstallerProfile {
	return installer.OrdinaryDeveloper(pkg)
}

// HardenedProfile applies the paper's Section VII developer suggestions to
// a store profile: prefer internal staging when space allows and verify on
// a private copy otherwise.
func HardenedProfile(prof InstallerProfile) InstallerProfile { return installer.Hardened(prof) }

// AllStoreProfiles lists every store profile.
func AllStoreProfiles() []InstallerProfile { return installer.AllStoreProfiles() }

// DeployInstaller installs a store app built from a profile onto a device.
func DeployInstaller(dev *Device, prof InstallerProfile, key *SigningKey) (*InstallerApp, error) {
	return installer.Deploy(dev, prof, key)
}

// Attacks.
type (
	// Malware is the adversary's resident app.
	Malware = attack.Malware
	// TOCTOUAttack is an installation hijack in progress.
	TOCTOUAttack = attack.TOCTOU
	// TOCTOUConfig parameterizes a hijack.
	TOCTOUConfig = attack.TOCTOUConfig
	// AttackStrategy selects FileObserver vs wait-and-see.
	AttackStrategy = attack.Strategy
	// DMSymlinkAttack is the Download Manager TOCTOU attack.
	DMSymlinkAttack = attack.DMSymlink
	// RedirectAttack is the redirect-Intent attack.
	RedirectAttack = attack.Redirect
	// RedirectConfig parameterizes a redirect attack.
	RedirectConfig = attack.RedirectConfig
	// HareAttack is the hanging-permission escalation.
	HareAttack = attack.HareEscalation
)

// Attack strategies.
const (
	StrategyFileObserver = attack.StrategyFileObserver
	StrategyWaitAndSee   = attack.StrategyWaitAndSee
)

// DeployMalware plants the adversary's app on a device.
func DeployMalware(dev *Device, pkg string) (*Malware, error) { return attack.DeployMalware(dev, pkg) }

// NewTOCTOU prepares an installation hijack.
func NewTOCTOU(mal *Malware, cfg TOCTOUConfig, orig *APK) *TOCTOUAttack {
	return attack.NewTOCTOU(mal, cfg, orig)
}

// AttackConfigForStore derives the attacker's per-store knowledge.
func AttackConfigForStore(prof InstallerProfile, strategy AttackStrategy) TOCTOUConfig {
	return attack.ConfigForStore(prof, strategy)
}

// NewDMSymlink prepares the DM symlink attack.
func NewDMSymlink(mal *Malware) (*DMSymlinkAttack, error) { return attack.NewDMSymlink(mal) }

// NewRedirect prepares a redirect-Intent attack.
func NewRedirect(mal *Malware, cfg RedirectConfig) *RedirectAttack {
	return attack.NewRedirect(mal, cfg)
}

// NewHareEscalation prepares the hanging-permission escalation.
func NewHareEscalation(mal *Malware, harePerm, victimPkg string) *HareAttack {
	return attack.NewHareEscalation(mal, harePerm, victimPkg)
}

// CertifigateAttack is the vulnerable-system-app escalation (TeamViewer).
type CertifigateAttack = attack.Certifigate

// NewCertifigate prepares the vulnerable-system-app escalation.
func NewCertifigate(mal *Malware, victimPkg string) *CertifigateAttack {
	return attack.NewCertifigate(mal, victimPkg)
}

// Defenses.
type (
	// DAPP is the user-level protection app.
	DAPP = defense.DAPP
	// DAPPAlert is one DAPP detection.
	DAPPAlert = defense.Alert
)

// DeployDAPP installs the DAPP defense watching the given staging dirs.
func DeployDAPP(dev *Device, watchDirs []string) (*DAPP, error) {
	return defense.Deploy(dev, watchDirs)
}

// EnableFUSEPatch turns the Section V-C FUSE DAC scheme on or off.
func EnableFUSEPatch(dev *Device, on bool) { dev.Fuse.SetPatched(on) }

// EnableIntentDetection toggles the redirect-Intent detection scheme.
func EnableIntentDetection(dev *Device, on bool) { dev.AMS.Firewall().EnableDetection(on) }

// EnableIntentOrigin toggles Intent origin stamping.
func EnableIntentOrigin(dev *Device, on bool) { dev.AMS.Firewall().EnableOrigin(on) }

// Measurement study.
type (
	// Corpus is the synthetic measurement population.
	Corpus = corpus.Corpus
	// CorpusConfig seeds and scales a corpus.
	CorpusConfig = corpus.Config
	// AppMeta is the static-analysis view of one app.
	AppMeta = corpus.AppMeta
	// Classification aggregates classifier verdicts.
	Classification = measure.Classification
)

// GenerateCorpus builds a calibrated synthetic corpus.
func GenerateCorpus(cfg CorpusConfig) *Corpus { return corpus.Generate(cfg) }

// ClassifyInstallers runs the Section IV classifier over a population.
func ClassifyInstallers(apps []AppMeta) Classification { return measure.ClassifyAll(apps) }

// BuildAPKForMeta materializes ground truth as an APK artifact with
// synthetic smali carrying the code-level markers.
func BuildAPKForMeta(meta AppMeta) *APK { return corpus.BuildAPKFor(meta) }

// ExtractedMeta is the scanner's view of one APK artifact.
type ExtractedMeta = measure.ExtractedMeta

// ExtractAPKMeta runs the Section IV-A scanner (marker search + def-use
// resolution) over an APK artifact.
func ExtractAPKMeta(a *APK) ExtractedMeta { return measure.ExtractMeta(a) }

// Static-analysis engine.
type (
	// Finding is one lint-rule hit with class/method/line provenance.
	Finding = analysis.Finding
	// LintRule is one pluggable GIA detector.
	LintRule = analysis.Rule
	// ScanStats aggregates a corpus scan: per-rule hit counts, coverage
	// and throughput.
	ScanStats = analysis.ScanStats
)

// LintRules returns the default GIA rule set (sdcard staging,
// world-readable staging, install API, market redirects, reflection
// obfuscation).
func LintRules() []LintRule { return analysis.DefaultRules() }

// LintAPK runs the analysis engine — smali IR, control-flow graphs,
// reaching definitions, lint rules — over an APK artifact's embedded code
// and returns the findings.
func LintAPK(a *APK) []Finding { return analysis.NewEngine().ScanAPK(a).Findings }

// ScanCorpusArtifacts materializes and scans a population on a parallel
// worker pool (workers <= 0 selects NumCPU), returning per-app extracted
// features plus aggregate scan statistics. Analyses are served from a
// shared content-addressed cache keyed on canonicalized smali, so
// template-identical apps are analyzed once; the returned stats carry the
// hit/miss/dedup split. Use measure.ScanArtifactsOpts to opt out.
func ScanCorpusArtifacts(apps []AppMeta, workers int) ([]ExtractedMeta, ScanStats) {
	return measure.ScanArtifacts(apps, workers)
}

// Timeline is a merged virtual-time event recorder (fs + pm + firewall +
// DAPP + AIT), the textual equivalent of the paper's attack demos.
type Timeline = timeline.Recorder

// NewTimeline creates a recorder on a device's clock.
func NewTimeline(dev *Device) *Timeline { return timeline.New(dev.Sched.Now) }

// Experiments.
type (
	// ExperimentTable is one rendered result table.
	ExperimentTable = experiment.Table
	// ExperimentOptions configures a full sweep.
	ExperimentOptions = experiment.Options
	// Scenario is a ready-made device + store + malware fixture.
	Scenario = experiment.Scenario
)

// AllTables regenerates every paper table and figure.
func AllTables(opts ExperimentOptions) ([]ExperimentTable, error) {
	return experiment.AllTables(opts)
}

// WriteReport renders a full markdown reproduction report for the tables.
func WriteReport(w io.Writer, opts ExperimentOptions, tables []ExperimentTable) error {
	return experiment.WriteReport(w, opts, tables)
}

// NewScenario builds a device + store + target + malware fixture.
func NewScenario(prof InstallerProfile, seed int64) (*Scenario, error) {
	return experiment.NewScenario(prof, seed)
}

// NewScenarioPayload is NewScenario with a caller-chosen target payload; a
// payload above one 64 KiB chunk makes the staged download multi-chunk.
func NewScenarioPayload(prof InstallerProfile, seed int64, payload []byte) (*Scenario, error) {
	return experiment.NewScenarioPayload(prof, seed, payload)
}

// HijackStudyTable runs both hijack strategies against every store.
func HijackStudyTable(seed int64) (ExperimentTable, error) { return experiment.HijackTable(seed) }

// DefenseMatrixTable regenerates Table VII (defense effectiveness & LOC).
func DefenseMatrixTable(seed int64) (ExperimentTable, error) { return experiment.TableVII(seed) }

// RedirectStudyTable runs the redirect attack under each Intent defense.
func RedirectStudyTable(seed int64) (ExperimentTable, error) { return experiment.RedirectTable(seed) }

// DMStudyTable runs the DM symlink attack across the three policies.
func DMStudyTable(seed int64) (ExperimentTable, error) { return experiment.DMTable(seed) }

// Figure1Table traces the AIT steps per store profile.
func Figure1Table(seed int64) (ExperimentTable, error) { return experiment.Figure1(seed) }

// Ablation sweeps (extensions beyond the paper's tables).
type (
	// SweepPoint is one configuration of an ablation sweep.
	SweepPoint = experiment.SweepPoint
	// ThresholdOutcome is one detection-threshold configuration.
	ThresholdOutcome = experiment.ThresholdOutcome
)

// ReactionLatencySweep ablates hijack success vs attacker reaction latency.
// workers bounds the trial pool (<= 0 selects NumCPU); results are
// identical for any pool size.
func ReactionLatencySweep(prof InstallerProfile, latencies []time.Duration, trials int, seed int64, workers int) ([]SweepPoint, error) {
	return experiment.ReactionLatencySweep(prof, latencies, trials, seed, workers)
}

// WaitDelaySweep ablates wait-and-see success vs the pre-measured delay.
func WaitDelaySweep(prof InstallerProfile, delays []time.Duration, trials int, seed int64, workers int) ([]SweepPoint, error) {
	return experiment.WaitDelaySweep(prof, delays, trials, seed, workers)
}

// DMGapSweep ablates the 6.0 DM policy's exposure vs the check-to-use gap.
func DMGapSweep(gaps []time.Duration, maxTries, trials int, seed int64, workers int) ([]SweepPoint, error) {
	return experiment.DMGapSweep(gaps, maxTries, trials, seed, workers)
}

// DetectionThresholdSweep ablates the IntentFirewall's detection window.
func DetectionThresholdSweep(thresholds []time.Duration, seed int64, workers int) ([]ThresholdOutcome, error) {
	return experiment.DetectionThresholdSweep(thresholds, seed, workers)
}

// AttackVector is one entry of the attack-surface survey.
type AttackVector = experiment.Vector

// SurveyAttackSurface enumerates the GIA vectors applicable to a device
// configuration (the assessment step before live attacks).
func SurveyAttackSurface(profiles []InstallerProfile, dmPolicy dm.SymlinkPolicy) []AttackVector {
	return experiment.Survey(profiles, dmPolicy)
}

// SurfaceTable renders the survey as a table.
func SurfaceTable(profiles []InstallerProfile, dmPolicy dm.SymlinkPolicy) ExperimentTable {
	return experiment.SurfaceTable(profiles, dmPolicy)
}

// FleetStudyTable scales the hijack across a device fleet, fanning devices
// out on a worker pool of the given size (<= 0 selects NumCPU).
func FleetStudyTable(devicesPerStore int, seed int64, workers int) (ExperimentTable, error) {
	return experiment.FleetTable(devicesPerStore, seed, workers)
}

// MeasurementTables regenerates the corpus-based tables (II, III, IV, VI,
// key study, Hare study).
func MeasurementTables(c *Corpus) []ExperimentTable {
	return []ExperimentTable{
		experiment.TableII(c), experiment.TableIII(c), experiment.TableIV(c),
		experiment.TableVI(c), experiment.KeyStudy(c), experiment.HareStudy(c),
	}
}

// Chaos harness: schedule exploration and fault injection.
type (
	// ChaosExplorer enumerates same-instant event orderings, sweeps
	// seed × jitter grids and minimizes invariant violations to replay
	// tokens.
	ChaosExplorer = chaos.Explorer
	// ChaosSchedule names one deterministic execution (seed, jitter,
	// arbiter choices); its Token method is the replay string.
	ChaosSchedule = chaos.Schedule
	// ChaosRun is the harness's handle passed to each explored execution.
	ChaosRun = chaos.Run
	// ChaosResult summarises an exploration or sweep.
	ChaosResult = chaos.Result
	// ChaosViolation is one schedule on which an invariant failed.
	ChaosViolation = chaos.Violation
	// FaultPlan injects deterministic faults (I/O errors, delays, drops,
	// duplicates, truncations) at the substrates' named sites.
	FaultPlan = chaos.FaultPlan
	// FaultRule is one declarative fault of a FaultPlan.
	FaultRule = chaos.Rule
	// FaultSite names an injection point (see the FaultSite* constants).
	FaultSite = fault.Site
	// FaultKind is a fault category (see the Fault* kind constants).
	FaultKind = fault.Kind
)

// ChaosDefaultDumpDepth is how many trailing events a violation dump
// keeps when no explicit flight-recorder depth is configured.
const ChaosDefaultDumpDepth = chaos.DefaultDumpDepth

// Fault injection sites.
const (
	FaultSiteSimEvent        = fault.SiteSimEvent
	FaultSiteVFSOpen         = fault.SiteVFSOpen
	FaultSiteVFSRead         = fault.SiteVFSRead
	FaultSiteVFSWrite        = fault.SiteVFSWrite
	FaultSiteVFSRename       = fault.SiteVFSRename
	FaultSiteDMFetch         = fault.SiteDMFetch
	FaultSiteDMChunk         = fault.SiteDMChunk
	FaultSiteFuseCheck       = fault.SiteFuseCheck
	FaultSiteIntentDeliver   = fault.SiteIntentDeliver
	FaultSiteIntentBroadcast = fault.SiteIntentBroadcast
)

// Fault kinds.
const (
	FaultError     = fault.KindError
	FaultDelay     = fault.KindDelay
	FaultDrop      = fault.KindDrop
	FaultDuplicate = fault.KindDuplicate
	FaultTruncate  = fault.KindTruncate
)

// NewFaultPlan builds a deterministic fault plan from rules.
func NewFaultPlan(seed int64, rules ...FaultRule) *FaultPlan {
	return chaos.NewFaultPlan(seed, rules...)
}

// ParseChaosToken decodes a replay token back into a schedule.
func ParseChaosToken(tok string) (ChaosSchedule, error) { return chaos.ParseToken(tok) }

// InstrumentScenario attaches a chaos run to a scenario's scheduler and
// every fault-capable substrate; call it before driving the clock.
func InstrumentScenario(s *Scenario, r *ChaosRun) { s.Instrument(r) }

// ChaosExplorationTable runs the schedule-exploration study over the TOCTOU
// race: exhaustive orderings, seed × jitter sweeps with and without the
// FUSE patch, and a truncated-download fault minimized to a replay token.
func ChaosExplorationTable(seed int64, workers int) (ExperimentTable, error) {
	return experiment.ChaosTable(seed, workers)
}

// Observability: dual-clock tracing and a metrics registry (internal/obs).
// Spans and instants live on tracks, each bound to one clock domain —
// virtual (the simulated device clock) or wall (a real monotonic
// stopwatch) — and export as Chrome trace-event JSON (WriteChrome, open in
// chrome://tracing or Perfetto), JSONL (WriteJSONL) or a text snapshot
// (Snapshot().WriteText). All hooks are nil-safe: a nil registry, trace,
// track or metric disables that instrument at zero cost.
type (
	// ObsRegistry is a process-wide registry of named counters, gauges and
	// histograms.
	ObsRegistry = obs.Registry
	// ObsTrace is a collection of spans and instants across tracks.
	ObsTrace = obs.Trace
	// ObsTrack is one named lane of trace events in one clock domain.
	ObsTrack = obs.Track
	// ObsSnapshot is a point-in-time, deterministic view of a registry.
	ObsSnapshot = obs.Snapshot
	// ObsEvent is one recorded span or instant on a track.
	ObsEvent = obs.Event
)

// NewObsRegistry creates an empty metrics registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// NewObsTrace creates an empty trace whose wall-clock domain reads a real
// monotonic stopwatch. Call SetWallClock(nil) for deterministic
// (virtual-only) traces that are byte-identical across worker counts.
func NewObsTrace() *ObsTrace { return obs.NewTrace() }

// InstrumentDevice hooks a device's scheduler onto the registry — counters
// "sim.events.scheduled", "sim.events.dispatched", "sim.events.cancelled"
// and gauge "sim.queue.depth" — and, when track is non-nil, emits one
// virtual-time dispatch instant per event. Either argument may be nil.
func InstrumentDevice(dev *Device, reg *ObsRegistry, track *ObsTrack) {
	m := sim.Metrics{Track: track}
	if reg != nil {
		m.Scheduled = reg.Counter("sim.events.scheduled")
		m.Dispatched = reg.Counter("sim.events.dispatched")
		m.Cancelled = reg.Counter("sim.events.cancelled")
		m.Depth = reg.Gauge("sim.queue.depth")
	}
	dev.Sched.Instrument(m)
}

// InstrumentWorkerPool installs process-wide telemetry on the shared par
// worker pool: counters "par.tasks" and "par.busy_ns", gauges "par.queued"
// and "par.busy", histogram "par.job_ns", per-worker wall-clock trace
// tracks ("par/worker-K"), and — when pprofLabels is set — a "par.worker"
// pprof label on every worker goroutine so CPU profiles split by worker.
// Wall telemetry is schedule-dependent; leave tr nil for deterministic
// runs. Passing all-zero arguments uninstalls the instrumentation.
func InstrumentWorkerPool(reg *ObsRegistry, tr *ObsTrace, pprofLabels bool) {
	if reg == nil && tr == nil && !pprofLabels {
		par.SetInstrumentation(nil)
		return
	}
	in := &par.Instrumentation{Trace: tr, PprofLabels: pprofLabels}
	if reg != nil {
		in.Tasks = reg.Counter("par.tasks")
		in.Steals = reg.Counter("par.frontier.steals")
		in.Queued = reg.Gauge("par.queued")
		in.Busy = reg.Gauge("par.busy")
		in.BusyNS = reg.Counter("par.busy_ns")
		in.JobNS = reg.Histogram("par.job_ns", obs.DurationBuckets())
		in.Clock = obs.Stopwatch()
	}
	par.SetInstrumentation(in)
}

// ObserveAnalysisCache re-homes the shared analysis engines' telemetry
// (scan counters plus both memo-cache layers) onto reg, so corpus scans
// via ScanCorpusArtifacts / ClassifyInstallers surface their cache
// behaviour. A nil registry is a no-op.
func ObserveAnalysisCache(reg *ObsRegistry) { measure.ObserveSharedEngines(reg) }
