package gia_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/ghost-installer/gia"
)

// renderTOCTOUTrace runs the same fixed-seed FileObserver TOCTOU fixture as
// TestGoldenTOCTOUTimeline and exports the merged device timeline as a
// Chrome trace: one virtual-time track carrying every fs, package, firewall
// and AIT event.
func renderTOCTOUTrace(t *testing.T) ([]byte, *gia.ObsTrack) {
	t.Helper()
	prof := gia.AmazonProfile()
	scenario, err := gia.NewScenario(prof, 42)
	if err != nil {
		t.Fatal(err)
	}
	rec := gia.NewTimeline(scenario.Dev)
	defer rec.Close()
	if err := rec.WatchFS(scenario.Dev.FS, prof.StagingDir); err != nil {
		t.Fatal(err)
	}
	rec.WatchPackages(scenario.Dev.PMS)
	rec.WatchFirewall(scenario.Dev.AMS.Firewall())

	atk := gia.NewTOCTOU(scenario.Mal, gia.AttackConfigForStore(prof, gia.StrategyFileObserver), scenario.Target)
	if err := atk.Launch(); err != nil {
		t.Fatal(err)
	}
	res := scenario.RunAIT()
	atk.Stop()
	if !res.Hijacked {
		t.Fatalf("fixed-seed TOCTOU did not hijack: %v", res.Err)
	}
	rec.RecordAIT(res)

	tr := gia.NewObsTrace()
	// Virtual time only: the wall domain would embed real durations and
	// break byte-for-byte reproducibility.
	tr.SetWallClock(nil)
	track := tr.VirtualTrack("device")
	rec.ExportSpans(track)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), track
}

// TestGoldenTOCTOUTrace pins the Chrome-trace export of the FileObserver
// TOCTOU timeline: the same events testdata/toctou_timeline.golden pins, as
// trace instants on a virtual-time "device" track. The export must be
// byte-identical across runs; regenerate deliberately with
// `go test -run TestGoldenTOCTOUTrace -update`.
func TestGoldenTOCTOUTrace(t *testing.T) {
	got, track := renderTOCTOUTrace(t)
	again, _ := renderTOCTOUTrace(t)
	if !bytes.Equal(got, again) {
		t.Fatalf("trace export is not deterministic across runs:\n--- first ---\n%s\n--- second ---\n%s",
			firstDiffWindow(got, again), firstDiffWindow(again, got))
	}

	// Every trace event must agree, field for field, with the golden
	// timeline: re-rendering the track in the timeline's own line format
	// must reproduce toctou_timeline.golden exactly.
	var lines bytes.Buffer
	for _, ev := range track.Events() {
		if !ev.Instant {
			t.Fatalf("timeline export produced a non-instant event: %+v", ev)
		}
		fmt.Fprintf(&lines, "[%10.3fms] %-8s %s\n",
			float64(ev.Start)/float64(time.Millisecond), ev.Name, ev.Detail)
	}
	timelineGolden, err := os.ReadFile(filepath.Join("testdata", "toctou_timeline.golden"))
	if err != nil {
		t.Fatalf("read timeline golden: %v", err)
	}
	if !bytes.Equal(lines.Bytes(), timelineGolden) {
		t.Errorf("trace events drifted from the golden timeline:\n--- trace ---\n%s\n--- timeline ---\n%s",
			firstDiffWindow(lines.Bytes(), timelineGolden), firstDiffWindow(timelineGolden, lines.Bytes()))
	}

	golden := filepath.Join("testdata", "toctou_trace.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace drifted from %s (rerun with -update if deliberate):\n--- got ---\n%s\n--- want ---\n%s",
			golden, firstDiffWindow(got, want), firstDiffWindow(want, got))
	}
}
