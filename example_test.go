package gia_test

// Godoc examples: runnable, deterministic documentation of the public API.

import (
	"fmt"

	"github.com/ghost-installer/gia"
)

// Example_hijack mounts the Section III-B installation hijack against the
// Amazon appstore profile and shows the outcome.
func Example_hijack() {
	scenario, err := gia.NewScenario(gia.AmazonProfile(), 42)
	if err != nil {
		panic(err)
	}
	cfg := gia.AttackConfigForStore(gia.AmazonProfile(), gia.StrategyFileObserver)
	atk := gia.NewTOCTOU(scenario.Mal, cfg, scenario.Target)
	if err := atk.Launch(); err != nil {
		panic(err)
	}
	defer atk.Stop()

	res := scenario.RunAIT()
	fmt.Println("hijacked:", res.Hijacked)
	fmt.Println("installed signer:", res.Installed.Cert.Subject)
	// Output:
	// hijacked: true
	// installed signer: com.fun.game-author
}

// Example_fusePatch shows the system-level defense blocking the same attack.
func Example_fusePatch() {
	scenario, err := gia.NewScenario(gia.AmazonProfile(), 42)
	if err != nil {
		panic(err)
	}
	gia.EnableFUSEPatch(scenario.Dev, true)
	cfg := gia.AttackConfigForStore(gia.AmazonProfile(), gia.StrategyFileObserver)
	atk := gia.NewTOCTOU(scenario.Mal, cfg, scenario.Target)
	if err := atk.Launch(); err != nil {
		panic(err)
	}
	defer atk.Stop()

	res := scenario.RunAIT()
	fmt.Println("hijacked:", res.Hijacked)
	fmt.Println("clean:", res.Clean())
	fmt.Println("replacements:", len(atk.Replacements()))
	// Output:
	// hijacked: false
	// clean: true
	// replacements: 0
}

// Example_classifier runs the Section IV installer classifier over a
// paper-scale corpus.
func Example_classifier() {
	c := gia.GenerateCorpus(gia.CorpusConfig{Seed: 2017, Scale: 1.0})
	cls := gia.ClassifyInstallers(c.PlayApps)
	fmt.Printf("installers: %d\n", cls.Installers)
	fmt.Printf("potentially vulnerable (of known): %.1f%%\n", 100*cls.VulnerableFracKnown())
	// Output:
	// installers: 1493
	// potentially vulnerable (of known): 83.7%
}
